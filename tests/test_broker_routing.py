"""Tests for brokers, the broker network and the routing strategies.

These are integration-style unit tests: small broker networks are built on
the simulator and subscriptions/publications flow end to end.  The key
correctness property — every strategy delivers exactly the notifications the
subscribers' filters match, no more, no fewer — is also checked
property-style in ``test_routing_equivalence.py``.
"""

import pytest

from repro.net.simulator import Simulator
from repro.pubsub.broker_network import (
    BrokerNetwork,
    TopologyError,
    balanced_tree_topology,
    grid_border_topology,
    line_topology,
    random_tree_topology,
    star_topology,
)
from repro.pubsub.filters import Equals, Filter, filter_from_dict
from repro.pubsub.routing import STRATEGIES, make_strategy


@pytest.fixture
def line3():
    sim = Simulator()
    net = line_topology(sim, 3)
    return sim, net


class TestTopologies:
    def test_line_topology_structure(self, line3):
        _sim, net = line3
        assert net.broker_names() == ["B1", "B2", "B3"]
        assert net.neighbors_of("B2") == ["B1", "B3"]
        assert net.neighbors_of("B1") == ["B2"]

    def test_star_topology(self):
        net = star_topology(Simulator(), 4)
        assert len(net.broker_names()) == 5
        assert len(net.neighbors_of("B0")) == 4

    def test_balanced_tree(self):
        net = balanced_tree_topology(Simulator(), branching=2, depth=2)
        assert len(net.broker_names()) == 7

    def test_random_tree_is_valid(self):
        net = random_tree_topology(Simulator(), 12, seed=3)
        net.validate()
        assert len(net.broker_edges()) == 11

    def test_grid_border_topology(self):
        net, cells = grid_border_topology(Simulator(), 2, 3)
        assert len(cells) == 6
        net.validate()

    def test_validation_rejects_cycle(self):
        sim = Simulator()
        net = BrokerNetwork(sim)
        for name in ("A", "B", "C"):
            net.add_broker(name)
        net.connect_brokers("A", "B")
        net.connect_brokers("B", "C")
        net.connect_brokers("C", "A")
        with pytest.raises(TopologyError):
            net.validate()

    def test_validation_rejects_disconnected(self):
        sim = Simulator()
        net = BrokerNetwork(sim)
        for name in ("A", "B", "C", "D"):
            net.add_broker(name)
        net.connect_brokers("A", "B")
        net.connect_brokers("C", "D")
        with pytest.raises(TopologyError):
            net.validate()

    def test_connect_unknown_broker_rejected(self):
        net = BrokerNetwork(Simulator())
        net.add_broker("A")
        with pytest.raises(KeyError):
            net.connect_brokers("A", "nope")

    def test_add_client_to_unknown_broker_rejected(self, line3):
        _sim, net = line3
        with pytest.raises(KeyError):
            net.add_client("c", "B99")


class TestBrokerBasics:
    def test_border_vs_inner(self, line3):
        sim, net = line3
        net.add_client("alice", "B1")
        assert net.brokers["B1"].is_border
        assert not net.brokers["B2"].is_border
        assert net.border_brokers() == [net.brokers["B1"]]

    def test_client_links_exclude_broker_peers(self, line3):
        sim, net = line3
        net.add_client("alice", "B2")
        assert net.brokers["B2"].client_links() == ["alice"]
        assert net.brokers["B2"].broker_neighbors() == ["B1", "B3"]

    def test_stats_snapshot(self, line3):
        sim, net = line3
        alice = net.add_client("alice", "B1")
        bob = net.add_client("bob", "B3")
        bob.subscribe(filter_from_dict({"service": "t"}))
        sim.run_until_idle()
        alice.publish({"service": "t"})
        sim.run_until_idle()
        stats = net.brokers["B2"].stats()
        assert stats["routed"] == 1
        assert stats["subscriptions"] >= 1


@pytest.mark.parametrize("strategy", sorted(STRATEGIES))
class TestEndToEndDelivery:
    def test_matching_notification_delivered_across_network(self, strategy):
        sim = Simulator()
        net = line_topology(sim, 4, routing=strategy)
        publisher = net.add_client("pub", "B1")
        subscriber = net.add_client("sub", "B4")
        subscriber.subscribe(filter_from_dict({"service": "temperature"}))
        sim.run_until_idle()
        publisher.publish({"service": "temperature", "value": 1})
        publisher.publish({"service": "stock", "value": 2})
        sim.run_until_idle()
        received = [n["service"] for n in subscriber.received_notifications()]
        assert received == ["temperature"]

    def test_no_delivery_to_publisher_itself(self, strategy):
        sim = Simulator()
        net = line_topology(sim, 2, routing=strategy)
        client = net.add_client("both", "B1")
        client.subscribe(filter_from_dict({"service": "t"}))
        sim.run_until_idle()
        client.publish({"service": "t"})
        sim.run_until_idle()
        # REBECA semantics: the notification is routed back only via the broker,
        # and the broker never forwards a message back over the link it came from.
        assert len(client.deliveries) == 0

    def test_multiple_subscribers_all_served(self, strategy):
        sim = Simulator()
        net = star_topology(sim, 4, routing=strategy)
        publisher = net.add_client("pub", "B1")
        subscribers = [net.add_client(f"s{i}", f"B{i}") for i in range(2, 5)]
        for sub in subscribers:
            sub.subscribe(filter_from_dict({"service": "t"}))
        sim.run_until_idle()
        publisher.publish({"service": "t"})
        sim.run_until_idle()
        assert all(len(sub.deliveries) == 1 for sub in subscribers)

    def test_unsubscribe_stops_delivery(self, strategy):
        sim = Simulator()
        net = line_topology(sim, 3, routing=strategy)
        publisher = net.add_client("pub", "B1")
        subscriber = net.add_client("sub", "B3")
        sub = subscriber.subscribe(filter_from_dict({"service": "t"}))
        sim.run_until_idle()
        publisher.publish({"service": "t"})
        sim.run_until_idle()
        subscriber.unsubscribe(sub)
        sim.run_until_idle()
        publisher.publish({"service": "t"})
        sim.run_until_idle()
        assert len(subscriber.deliveries) == 1

    def test_unsubscribe_does_not_break_other_subscribers(self, strategy):
        sim = Simulator()
        net = line_topology(sim, 3, routing=strategy)
        publisher = net.add_client("pub", "B1")
        keep = net.add_client("keep", "B3")
        leave = net.add_client("leave", "B3")
        keep.subscribe(filter_from_dict({"service": "t"}))
        leave_sub = leave.subscribe(filter_from_dict({"service": "t"}))
        sim.run_until_idle()
        leave.unsubscribe(leave_sub)
        sim.run_until_idle()
        publisher.publish({"service": "t"})
        sim.run_until_idle()
        assert len(keep.deliveries) == 1
        assert len(leave.deliveries) == 0


class TestRoutingStrategyBehaviour:
    def test_simple_routing_traffic_lower_than_flooding(self):
        results = {}
        for strategy in ("flooding", "simple"):
            sim = Simulator()
            net = line_topology(sim, 6, routing=strategy)
            publisher = net.add_client("pub", "B1")
            subscriber = net.add_client("sub", "B2")
            subscriber.subscribe(filter_from_dict({"service": "t"}))
            sim.run_until_idle()
            for _ in range(5):
                publisher.publish({"service": "other"})
            sim.run_until_idle()
            results[strategy] = net.broker_link_messages("publish")
        assert results["simple"] < results["flooding"]

    def test_covering_suppresses_redundant_forwarding(self):
        def setup(strategy):
            sim = Simulator()
            net = line_topology(sim, 4, routing=strategy)
            broad = net.add_client("broad", "B1")
            narrow = net.add_client("narrow", "B1")
            broad.subscribe(filter_from_dict({"service": "t"}))
            sim.run_until_idle()
            narrow.subscribe(filter_from_dict({"service": "t", "location": "r1"}))
            sim.run_until_idle()
            return net

        simple = setup("simple")
        covering = setup("covering")
        assert covering.broker_link_messages("subscribe") < simple.broker_link_messages("subscribe")

    def test_covering_unsubscribe_reforwards_uncovered(self):
        sim = Simulator()
        net = line_topology(sim, 3, routing="covering")
        broad = net.add_client("broad", "B1")
        narrow = net.add_client("narrow", "B1")
        publisher = net.add_client("pub", "B3")
        broad_sub = broad.subscribe(filter_from_dict({"service": "t"}))
        sim.run_until_idle()
        narrow.subscribe(filter_from_dict({"service": "t", "location": "r1"}))
        sim.run_until_idle()
        # Remove the covering subscription; the covered one must be re-advertised
        # so that its notifications still arrive.
        broad.unsubscribe(broad_sub)
        sim.run_until_idle()
        publisher.publish({"service": "t", "location": "r1"})
        sim.run_until_idle()
        assert len(narrow.deliveries) == 1
        assert len(broad.deliveries) == 0

    def test_identity_suppresses_duplicate_filters(self):
        sim = Simulator()
        net = line_topology(sim, 3, routing="identity")
        clients = [net.add_client(f"c{i}", "B1") for i in range(4)]
        for client in clients:
            client.subscribe(filter_from_dict({"service": "t"}))
        sim.run_until_idle()
        # Only the first identical filter needs to travel to B2 and B3.
        assert net.broker_link_messages("subscribe") == 2

    def test_unknown_strategy_rejected(self):
        sim = Simulator()
        net = line_topology(sim, 2)
        with pytest.raises(ValueError):
            make_strategy("nonsense", net.brokers["B1"])

    def test_merging_still_delivers(self):
        sim = Simulator()
        net = line_topology(sim, 3, routing="merging")
        publisher = net.add_client("pub", "B3")
        subscribers = []
        for i in range(8):
            client = net.add_client(f"c{i}", "B1")
            client.subscribe(filter_from_dict({"service": "t", "value": i}))
            subscribers.append(client)
        sim.run_until_idle()
        for i in range(8):
            publisher.publish({"service": "t", "value": i})
        sim.run_until_idle()
        assert all(len(c.deliveries) == 1 for c in subscribers)

    def test_detach_message_cleans_routing_state(self):
        sim = Simulator()
        net = line_topology(sim, 3, routing="simple")
        subscriber = net.add_client("sub", "B1")
        subscriber.subscribe(filter_from_dict({"service": "t"}))
        sim.run_until_idle()
        assert net.total_routing_table_size() > 0
        subscriber.disconnect(notify_broker=True)
        sim.run_until_idle()
        assert net.brokers["B1"].routing_table.entries_for_link("sub") == []
