"""Cross-check tests for the pluggable transport layer.

Three layers of guarantees, in the spirit of the ``matcher=`` and
``advertising=`` knobs:

1. **Golden trace** — a deterministic churn scenario on the default
   (simulator) substrate is captured as a canonical byte trace (every
   delivered message, wire-encoded with normalized message ids) and hashed.
   The digest below was recorded on the pre-refactor substrate, so
   ``SimTransport`` producing the same digest proves the refactor did not
   change a single delivered byte.
2. **Construction equivalence** — building a network the legacy way
   (``BrokerNetwork(sim)``) and the explicit way
   (``BrokerNetwork(transport=SimTransport(sim))``) yields byte-identical
   traces.
3. **Backend equivalence** — the asyncio backend (real localhost TCP
   sockets) delivers the same notification set as the simulator for the same
   scenario on a 3-broker topology.
"""

import hashlib

import pytest

from repro.net.process import Message, Process
from repro.net.simulator import Simulator
from repro.net.wire import encode_control, encode_message, frame
from repro.pubsub.broker_network import BrokerNetwork, line_topology
from repro.pubsub.filters import Equals, Filter, Prefix, Range
from repro.pubsub.notification import Notification

# sha256 of the canonical trace of scenario() on the pre-refactor substrate
# (commit 042deda); recorded before the transport refactor and asserted ever
# since.  If this changes, SimTransport is no longer byte-identical to the
# original discrete-event simulator semantics.
GOLDEN_DIGESTS = {
    "simple": "d5036e6a7c7c4044dc3a3fad8cb17b9a90dcd2e3c9c49d2bc1c9393b293b7a99",
    "covering": "23edd2c77af9da29650fd0f574f4d857a5f6bede8072b8d2d644c651a8388852",
}


# ----------------------------------------------------------- trace capturing


def _instrument(network) -> list:
    """Wrap every registered process's deliver() to record arriving messages."""
    trace = []
    sim_clock = network.sim
    for process in network.network.processes.values():
        original = process.deliver

        def hook(message, _original=original, _name=process.name):
            trace.append((_name, sim_clock.now, message))
            _original(message)

        process.deliver = hook
    return trace


def canonical_trace_bytes(trace) -> bytes:
    """Serialize a delivery trace to canonical bytes.

    Message ids come from a process-global counter, so absolute values depend
    on how many messages earlier tests created; they are remapped to dense
    ids by order of first appearance, which preserves identity and forwarding
    structure while making the byte trace reproducible in any test order.
    """
    msg_ids = {}
    chunks = []
    for receiver, now, message in trace:
        dense = msg_ids.setdefault(message.msg_id, len(msg_ids))
        normalized = Message(
            kind=message.kind,
            payload=message.payload,
            sender=message.sender,
            msg_id=dense,
            meta=dict(message.meta),
        )
        chunks.append(frame(encode_control({"to": receiver, "t": now})))
        chunks.append(frame(encode_message(normalized)))
    return b"".join(chunks)


def scenario(routing: str, net: BrokerNetwork) -> None:
    """A deterministic churn scenario: subscriptions, publishes, failures.

    Everything that would consult a global counter (notification ids,
    subscription ids) is pinned explicitly so the trace depends only on the
    substrate's delivery semantics.
    """
    sim = net.sim
    c1 = net.add_client("c1", "B1")
    c2 = net.add_client("c2", "B4")
    c3 = net.add_client("c3", "B2")
    publisher = net.add_client("pub", "B3")

    c1.subscribe(Filter([Equals("service", "temp")]), sub_id="g1")
    c2.subscribe(Filter([Equals("service", "temp"), Range("value", 10, 30)]), sub_id="g2")
    c3.subscribe(Filter([Prefix("room", "r")]), sub_id="g3")
    net.run(until=1.0)

    def publish(i, **attrs):
        publisher.publish(Notification(attrs, notification_id=9000 + i))

    for i in range(6):
        publish(i, service="temp", value=5 * i, room=f"r{i % 3}")
    net.run(until=2.0)

    # g5 is narrower than the already-propagated g1, so covering routing
    # suppresses (part of) its forwarding while simple routing does not
    c3.subscribe(Filter([Equals("service", "temp"), Range("value", 0, 50)]), sub_id="g5")
    net.run(until=2.5)

    # covering churn: a broad subscription arrives, then the narrow one leaves
    c2.subscribe(Filter([Equals("service", "temp")]), sub_id="g4")
    net.run(until=3.0)
    c2.unsubscribe("g2")
    net.run(until=3.5)
    # removing the coverer forces covering routing to re-advertise g5
    c1.unsubscribe("g1")
    net.run(until=4.0)
    for i in range(6, 10):
        publish(i, service="temp", value=7 * i, room="q1")
    net.run(until=5.0)

    # a link outage drops traffic mid-run, then the link heals
    link = net.network.link_between("B2", "B3")
    link.set_up(False)
    publish(10, service="temp", value=12, room="r0")
    net.run(until=6.0)
    link.set_up(True)
    publish(11, service="temp", value=13, room="r1")
    net.run(until=7.0)

    # a client detaches entirely; its routing entries are garbage collected
    c3.disconnect(notify_broker=True)
    net.run(until=8.0)
    publish(12, service="temp", value=14, room="r2")
    net.sim.run_until_idle()


def run_scenario(routing: str, net_factory) -> bytes:
    net = net_factory(routing)
    trace = _instrument(net)
    scenario(routing, net)
    return canonical_trace_bytes(trace)


def legacy_network(routing: str) -> BrokerNetwork:
    """The pre-refactor construction path: a BrokerNetwork over a Simulator."""
    return line_topology(Simulator(), 4, routing=routing)


def trace_digest(trace_bytes: bytes) -> str:
    return hashlib.sha256(trace_bytes).hexdigest()


# ------------------------------------------------------------------- goldens


@pytest.mark.parametrize("routing", sorted(GOLDEN_DIGESTS))
def test_sim_substrate_matches_pre_refactor_golden_trace(routing):
    digest = trace_digest(run_scenario(routing, legacy_network))
    assert digest == GOLDEN_DIGESTS[routing], (
        "the simulator substrate no longer reproduces the pre-refactor "
        "byte trace — SimTransport changed observable delivery behaviour"
    )


@pytest.mark.parametrize("routing", sorted(GOLDEN_DIGESTS))
def test_explicit_sim_transport_is_byte_identical_to_legacy_construction(routing):
    from repro.net.transport import SimTransport

    def explicit_network(routing):
        return line_topology(n_brokers=4, routing=routing, transport=SimTransport(Simulator()))

    explicit = run_scenario(routing, explicit_network)
    legacy = run_scenario(routing, legacy_network)
    assert explicit == legacy
    assert trace_digest(explicit) == GOLDEN_DIGESTS[routing]


def test_transport_string_knob_builds_sim_backend():
    net = line_topology(n_brokers=4, transport="sim")
    assert net.transport.name == "sim"
    assert net.sim is net.transport.sim  # the clock IS the simulator


# ------------------------------------------------------- asyncio equivalence


def asyncio_scenario(net: BrokerNetwork):
    """A 3-broker scenario runnable on either backend.

    Returns the per-client sets of delivered notification identities.
    Ordering is not compared: the asyncio backend interleaves link traffic
    with a real scheduler, so only the delivered *set* is substrate-invariant.
    """
    c1 = net.add_client("c1", "B1")
    c3 = net.add_client("c3", "B3")
    c1.subscribe(Filter([Equals("service", "temp")]), sub_id="a1")
    c1.subscribe(Filter([Equals("service", "humidity"), Range("value", 40, 60)]), sub_id="a2")
    c3.subscribe(Filter([Range("value", 0, 24)]), sub_id="a3")
    net.run_until_idle()

    pub1 = net.add_client("pub1", "B2")
    pub3 = net.add_client("pub3", "B3")
    for i in range(12):
        pub1.publish(Notification({"service": "temp", "value": 2 * i}, notification_id=7000 + i))
        pub3.publish(
            Notification({"service": "humidity", "value": 35 + 2 * i}, notification_id=7100 + i)
        )
    net.run_until_idle()

    # churn: the narrow subscription leaves, a broad one arrives
    c3.unsubscribe("a3")
    c3.subscribe(Filter([Equals("service", "humidity")]), sub_id="a4")
    net.run_until_idle()
    for i in range(6):
        pub1.publish(Notification({"service": "humidity", "value": 50 + i}, notification_id=7200 + i))
    net.run_until_idle()

    def delivered(client):
        return {
            (d.notification.notification_id, tuple(sorted(d.notification.attributes.items())))
            for d in client.deliveries
        }

    return {"c1": delivered(c1), "c3": delivered(c3)}


def test_asyncio_backend_delivers_same_notification_set_as_simulator():
    sim_net = line_topology(Simulator(), n_brokers=3, routing="covering")
    expected = asyncio_scenario(sim_net)
    assert expected["c1"] and expected["c3"], "scenario must actually deliver"

    asyncio_net = line_topology(n_brokers=3, routing="covering", transport="asyncio", link_latency=0.0)
    try:
        actual = asyncio_scenario(asyncio_net)
    finally:
        asyncio_net.close()
    assert actual == expected


# ------------------------------------------------------- asyncio link semantics


class Recorder(Process):
    """A process that records everything it receives."""

    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.received = []

    def on_message(self, message):
        self.received.append(message)


@pytest.fixture
def tcp_pair():
    from repro.net.transport import AsyncioTransport

    transport = AsyncioTransport()
    a = Recorder(transport.clock, "a")
    b = Recorder(transport.clock, "b")
    link = transport.make_link(a, b, latency=0.0)
    yield transport, a, b, link
    transport.close()


class TestAsyncioLink:
    def test_roundtrip_and_stats(self, tcp_pair):
        transport, a, b, link = tcp_pair
        a.send("b", Message("ping", payload={"n": 1}))
        b.send("a", Message("pong", payload={"n": 2}))
        transport.run_until_idle()
        assert [m.payload for m in b.received] == [{"n": 1}]
        assert [m.payload for m in a.received] == [{"n": 2}]
        assert b.received[0].sender == "a"
        assert link.total_messages() == 2
        assert link.messages_of_kind("ping") == 1
        assert link.stats_a_to_b.messages == 1
        assert link.total_bytes() > 0

    def test_fifo_order_over_tcp(self, tcp_pair):
        transport, a, b, _link = tcp_pair
        for i in range(50):
            a.send("b", Message("seq", payload=i))
        transport.run_until_idle()
        assert [m.payload for m in b.received] == list(range(50))

    def test_send_many_burst_arrives_in_order(self, tcp_pair):
        transport, a, b, link = tcp_pair
        a.send("b", Message("x", payload="first"))
        a.send_many("b", [Message("y", payload="second"), Message("y", payload="third")])
        transport.run_until_idle()
        assert [m.payload for m in b.received] == ["first", "second", "third"]
        assert a.messages_sent == 3
        assert link.stats_a_to_b.messages == 3

    def test_down_link_drops_at_sender(self, tcp_pair):
        transport, a, b, link = tcp_pair
        link.set_up(False)
        a.send("b", Message("x"))
        a.send_many("b", [Message("x"), Message("x")])
        transport.run_until_idle()
        assert b.received == []
        assert link.stats_a_to_b.dropped == 3

    def test_disconnect_and_reconnect(self, tcp_pair):
        transport, a, b, link = tcp_pair
        link.disconnect()
        assert not a.has_link("b")
        link.reconnect()
        a.send("b", Message("x", payload=1))
        transport.run_until_idle()
        assert [m.payload for m in b.received] == [1]

    def test_dead_process_ignores_messages(self, tcp_pair):
        transport, a, b, _link = tcp_pair
        b.shutdown()
        a.send("b", Message("x"))
        transport.run_until_idle()
        assert b.received == []
        assert b.messages_received == 0

    def test_clock_schedules_callbacks(self, tcp_pair):
        transport, a, b, _link = tcp_pair
        fired = []
        transport.clock.schedule(0.01, fired.append, "later")
        cancelled = transport.clock.schedule(0.01, fired.append, "never")
        cancelled.cancel()
        transport.run_until_idle()
        assert fired == ["later"]
        assert transport.clock.now > 0

    def test_duplicate_process_name_rejected(self, tcp_pair):
        from repro.net.transport import TransportError

        transport, a, b, _link = tcp_pair
        impostor = type(a)(transport.clock, "a")
        with pytest.raises(TransportError):
            transport.make_link(impostor, b, latency=0.0)

    def test_latency_is_a_floor_not_a_serial_sleep(self):
        # regression: per-message sleeps used to accumulate, so a 20-message
        # burst over a 50ms link took >1s instead of ~50ms
        from repro.net.transport import AsyncioTransport

        transport = AsyncioTransport()
        try:
            a = Recorder(transport.clock, "a")
            b = Recorder(transport.clock, "b")
            transport.make_link(a, b, latency=0.05)
            import time as _time

            start = _time.perf_counter()
            for i in range(20):
                a.send("b", Message("seq", payload=i))
            transport.run_until_idle()
            elapsed = _time.perf_counter() - start
            assert [m.payload for m in b.received] == list(range(20))
            assert elapsed < 0.5, f"latency accumulated serially: burst took {elapsed:.2f}s"
        finally:
            transport.close()

    def test_link_down_during_latency_window_drops_when_configured(self):
        # parity with the sim endpoint's _deliver: the up-check happens at
        # delivery time, so a message still in its latency window when the
        # link goes down is dropped under deliver_in_flight_on_down=False
        from repro.net.transport import AsyncioTransport

        transport = AsyncioTransport()
        try:
            a = Recorder(transport.clock, "a")
            b = Recorder(transport.clock, "b")
            link = transport.make_link(a, b, latency=0.2, deliver_in_flight_on_down=False)
            a.send("b", Message("x"))
            transport.clock.schedule(0.02, link.set_up, False)
            transport.run_until_idle()
            assert b.received == []
            assert link.stats_a_to_b.dropped == 1
        finally:
            transport.close()

    def test_link_down_during_latency_window_delivers_by_default(self):
        from repro.net.transport import AsyncioTransport

        transport = AsyncioTransport()
        try:
            a = Recorder(transport.clock, "a")
            b = Recorder(transport.clock, "b")
            link = transport.make_link(a, b, latency=0.2)  # buffered-TCP default
            a.send("b", Message("x"))
            transport.clock.schedule(0.02, link.set_up, False)
            transport.run_until_idle()
            assert len(b.received) == 1
        finally:
            transport.close()

    def test_raising_scheduled_callback_fails_the_run(self, tcp_pair):
        # parity with the simulator backend, where a raising event fails run()
        transport, _a, _b, _link = tcp_pair

        def boom():
            raise RuntimeError("scheduled bug")

        transport.clock.schedule(0.005, boom)
        with pytest.raises(RuntimeError, match="scheduled bug"):
            transport.run_until_idle()

    def test_raising_handler_fails_run_and_does_not_wedge_the_transport(self):
        from repro.net.transport import AsyncioTransport

        class Poisoned(Recorder):
            def on_message(self, message):
                if message.payload == "poison":
                    raise RuntimeError("handler bug")
                super().on_message(message)

        transport = AsyncioTransport()
        try:
            a = Recorder(transport.clock, "a")
            b = Poisoned(transport.clock, "b")
            transport.make_link(a, b, latency=0.0)
            a.send("b", Message("x", payload="poison"))
            a.send("b", Message("x", payload="after"))  # never dispatched
            with pytest.raises(RuntimeError, match="handler bug"):
                transport.run_until_idle()
            # regression: the undispatched frame used to stay in the
            # in-flight count forever, wedging every later run_until_idle
            # into its full timeout
            transport.run_until_idle(timeout=2.0)
            # the dead direction is marked: further sends fail loudly
            # instead of silently re-inflating the in-flight counter
            from repro.net.transport import TransportError

            with pytest.raises(TransportError):
                a.send("b", Message("x", payload="onto the dead connection"))
            transport.run_until_idle(timeout=2.0)  # still not wedged
        finally:
            transport.close()


def test_make_transport_rejects_simulator_alongside_foreign_transport():
    from repro.net.transport import SimTransport, make_transport

    sim = Simulator()
    # a transport wrapping THAT simulator is fine...
    wrapped = SimTransport(sim)
    assert make_transport(wrapped, sim=sim) is wrapped
    # ...but a transport with its own clock would silently orphan `sim`
    with pytest.raises(ValueError):
        make_transport(SimTransport(), sim=sim)
    with pytest.raises(ValueError):
        BrokerNetwork(sim, transport=SimTransport())


def test_transport_mismatch_detected():
    from repro.core.location import LocationSpace
    from repro.core.middleware import MobilePubSub, MobilitySystemConfig

    net = line_topology(n_brokers=2)
    space = LocationSpace({"l1": "B1"})
    with pytest.raises(ValueError):
        MobilePubSub(net.sim, net, space, config=MobilitySystemConfig(transport="asyncio"))
