"""Smoke tests for the experiment harness and the E1..E12 experiments.

Each experiment is run with reduced parameters and its *qualitative* shape is
asserted — the same shape EXPERIMENTS.md documents as the reproduction
criterion (who wins, in which direction the curves move).
"""

import pytest

from repro.experiments import EXPERIMENTS
from repro.experiments import (
    e01_routing,
    e02_physical,
    e03_logical,
    e04_replicator,
    e05_handover,
    e06_nlb_sweep,
    e07_buffering,
    e08_shared_buffer,
    e09_exception,
    e10_scalability,
    e11_context,
    e12_routing_ablation,
)
from repro.experiments.harness import ExperimentResult, Table, geometric_sizes


class TestHarness:
    def test_add_row_and_lookup(self):
        table = Table("t", ["a", "b"])
        table.add_row(a=1, b=2)
        table.add_row(a=3, b=4)
        assert table.column("a") == [1, 3]
        assert table.value("b", a=3) == 4
        assert len(table) == 2

    def test_add_row_rejects_unknown_columns(self):
        table = Table("t", ["a"])
        with pytest.raises(KeyError):
            table.add_row(a=1, nope=2)

    def test_value_requires_unique_match(self):
        table = Table("t", ["a", "b"])
        table.add_row(a=1, b=2)
        table.add_row(a=1, b=3)
        with pytest.raises(LookupError):
            table.value("b", a=1)

    def test_formatting_outputs(self):
        table = Table("title", ["a", "b"], description="desc")
        table.add_row(a=1, b=None)
        text = table.formatted()
        assert "title" in text and "desc" in text and "-" in text
        markdown = table.to_markdown()
        assert markdown.startswith("### title")

    def test_experiment_result_container(self):
        result = ExperimentResult("E0", "demo")
        table = result.add_table(Table("t", ["a"]))
        table.add_row(a=1)
        result.notes.append("note")
        assert "E0" in result.formatted()

    def test_geometric_sizes(self):
        sizes = geometric_sizes(5, 40, 4)
        assert sizes[0] == 5 and sizes[-1] == 40
        assert sizes == sorted(sizes)
        assert geometric_sizes(5, 5, 3) == [5]

    def test_registry_complete(self):
        assert len(EXPERIMENTS) == 13
        assert all(callable(run) for _title, run in EXPERIMENTS.values())


class TestE01Routing:
    def test_simple_routing_saves_traffic_and_delivers_the_same(self):
        table = e01_routing.run(broker_counts=(6,), publications_per_broker=3)
        flooding = table.rows_where(strategy="flooding")[0]
        simple = table.rows_where(strategy="simple")[0]
        assert flooding["deliveries"] == simple["deliveries"]
        assert simple["publish_msgs"] < flooding["publish_msgs"]


class TestE02Physical:
    def test_relocation_beats_resubscribe_beats_none(self):
        table = e02_physical.run(duration=30.0, publish_period=0.25, dwell_time=4.0, handover_gap=1.0)
        none_missed = table.value("missed", variant="none")
        resub_missed = table.value("missed", variant="resubscribe")
        relocation_missed = table.value("missed", variant="relocation")
        assert relocation_missed <= resub_missed <= none_missed
        assert relocation_missed <= 2
        assert none_missed > resub_missed


class TestE03Logical:
    def test_myloc_precision_dominates(self):
        table = e03_logical.run(duration=30.0)
        aware = table.rows_where(client="location-aware (myloc)")[0]
        unaware = table.rows_where(client="location-unaware (service-wide)")[0]
        assert aware["precision"] >= 0.95
        assert unaware["precision"] < aware["precision"]
        assert unaware["deliveries"] > aware["deliveries"]


class TestE04Replicator:
    def test_pre_subscription_reduces_misses_and_latency(self):
        table = e04_replicator.run(duration=50.0)
        reactive = table.rows_where(variant="reactive")[0]
        replicator = table.rows_where(variant="replicator")[0]
        assert replicator["missed"] < reactive["missed"]
        assert replicator["delivery_rate"] >= reactive["delivery_rate"]
        assert replicator["replayed"] > 0
        assert replicator["first_delivery_latency"] <= reactive["first_delivery_latency"]
        assert replicator["control_msgs"] > reactive["control_msgs"]


class TestE05Handover:
    def test_shadow_cost_grows_with_degree(self):
        table = e05_handover.run(duration=40.0)
        line = table.rows_where(graph="line")[0]
        complete = table.rows_where(graph="complete")[0]
        assert complete["mean_shadows"] > line["mean_shadows"]
        assert complete["shadow_deliveries"] > line["shadow_deliveries"]


class TestE06NlbSweep:
    def test_coverage_and_cost_axes(self):
        table = e06_nlb_sweep.run(duration=800.0, rows=4, cols=4)
        walk_nlb1 = table.rows_where(workload="random-walk", predictor="nlb-1")[0]
        walk_flood = table.rows_where(workload="random-walk", predictor="flooding")[0]
        walk_none = table.rows_where(workload="random-walk", predictor="none")[0]
        teleport_nlb1 = table.rows_where(workload="teleport", predictor="nlb-1")[0]
        assert walk_nlb1["coverage"] == 1.0  # walks respect the movement graph
        assert walk_none["coverage"] == 0.0
        assert walk_flood["mean_shadows"] > walk_nlb1["mean_shadows"]
        assert teleport_nlb1["coverage"] < 1.0  # power-off teleports break nlb


class TestE07Buffering:
    def test_policies_trade_memory_for_history(self):
        table = e07_buffering.run()
        unbounded = table.rows_where(policy="unbounded")[0]
        time_based = table.rows_where(policy="time")[0]
        count_based = table.rows_where(policy="count")[0]
        assert unbounded["evicted"] == 0
        assert unbounded["peak_memory"] > time_based["peak_memory"]
        assert time_based["stale_replayed"] == 0
        assert count_based["replayed"] <= 12
        assert unbounded["replayed"] >= time_based["replayed"]


class TestE08SharedBuffer:
    def test_saving_grows_with_colocated_clients(self):
        table = e08_shared_buffer.run(client_counts=(1, 4, 8))
        ratios = table.column("saving_ratio")
        assert ratios[-1] > ratios[0]
        assert table.value("saving_ratio", clients=8) > 2.0


class TestE09Exception:
    def test_exception_mode_recovers_notifications(self):
        table = e09_exception.run(duration=60.0)
        off = table.rows_where(variant="exception-off")[0]
        on = table.rows_where(variant="exception-on")[0]
        assert on["exception_recoveries"] > off["exception_recoveries"]
        assert on["delivery_rate"] >= off["delivery_rate"]


class TestE10Scalability:
    def test_cost_grows_with_system_size(self):
        table = e10_scalability.run(grid_sides=(2, 3), client_counts=(2,), duration=30.0)
        small = table.value("events", brokers=4, clients=2, variant="replicator")
        large = table.value("events", brokers=9, clients=2, variant="replicator")
        assert large > small
        for row in table.rows:
            assert row["delivery_rate"] >= 0.8


class TestE11Context:
    def test_context_awareness_improves_precision(self):
        table = e11_context.run(duration=60.0)
        aware = table.rows_where(client="context-aware")[0]
        static = table.rows_where(client="static (subscribe-everything)")[0]
        assert aware["precision"] > static["precision"]
        assert aware["rebinds"] > 0


class TestE12RoutingAblation:
    def test_optimisations_shrink_tables_without_changing_delivery(self):
        table = e12_routing_ablation.run(subscriber_counts=(12,), publications=20)
        deliveries = {row["strategy"]: row["deliveries"] for row in table.rows}
        assert len(set(deliveries.values())) == 1  # identical delivery everywhere
        simple = table.value("table_size", subscribers=12, strategy="simple")
        covering = table.value("table_size", subscribers=12, strategy="covering")
        assert covering < simple
        assert table.value("sub_msgs", subscribers=12, strategy="flooding") == 0
