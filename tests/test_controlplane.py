"""Tests for the broker control plane: SystemConfig, live metrics, runtime knobs.

Five groups:

* **SystemConfig** — construction-time validation (the ``matcher="indxed"``
  silent-typo hole), dict round-trips, ``--set`` overlays and argparse
  resolution;
* **BrokerNetwork integration** — the config/legacy-kwarg seam: typo
  rejection at construction, clash detection, and byte-identical behavior
  between the legacy kwargs and an equivalent ``SystemConfig``;
* **metrics** — the obs instruments themselves, plus
  ``Transport.metrics_snapshot()`` agreeing across all three backends on
  the deterministic broker counters of a fixed workload;
* **runtime knobs** — live matcher/advertising flips under traffic keep
  delivered sets identical to a never-flipped oracle, on every backend;
  rejected knobs/values/targets fail with the documented exception types;
* **surfaces** — the shared registry request helper's dead-channel path and
  the ``repro metrics`` / ``repro top`` CLI smoke.
"""

import argparse
import asyncio
import json

import pytest

from repro.cli import main
from repro.config import RUNTIME_KNOBS, SystemConfig
from repro.core.middleware import MobilitySystemConfig
from repro.net.cluster import ClusterError, ClusterTransport
from repro.net.registry import RegistryError, RegistryServer
from repro.net.transport import TransportError, make_transport
from repro.obs.metrics import (
    NULL_COUNTER,
    NULL_HISTOGRAM,
    Counter,
    Histogram,
    MetricsRegistry,
)
from repro.pubsub.broker_network import BrokerNetwork
from repro.pubsub.testing import run_flip_workload, run_line_workload

# ------------------------------------------------------------- SystemConfig


def test_systemconfig_defaults():
    config = SystemConfig()
    assert (config.matcher, config.advertising) == ("indexed", "incremental")
    assert (config.transport, config.codec) == ("sim", "json")
    assert config.metrics is True
    assert "matcher=indexed" in config.describe()


@pytest.mark.parametrize(
    "field,value",
    [("matcher", "indxed"), ("advertising", "scann"), ("transport", "tcp"), ("codec", "xml")],
)
def test_systemconfig_rejects_unknown_names(field, value):
    with pytest.raises(ValueError, match=f"unknown {field} {value!r}; allowed: "):
        SystemConfig(**{field: value})


@pytest.mark.parametrize("field", ["flush_cap", "duplicates_capacity"])
@pytest.mark.parametrize("bad", [0, -4, True, "big", None])
def test_systemconfig_rejects_bad_sizes(field, bad):
    with pytest.raises(ValueError, match=f"{field} must be a positive integer"):
        SystemConfig(**{field: bad})


def test_systemconfig_rejects_non_bool_metrics():
    with pytest.raises(ValueError, match="metrics must be a bool"):
        SystemConfig(metrics="yes")


def test_systemconfig_dict_round_trip():
    config = SystemConfig(matcher="brute", transport="asyncio", codec="binary", flush_cap=4096)
    assert SystemConfig.from_dict(config.to_dict()) == config
    with pytest.raises(ValueError, match="unknown SystemConfig key"):
        SystemConfig.from_dict({**config.to_dict(), "turbo": 1})


def test_systemconfig_with_overrides():
    config = SystemConfig().with_overrides(
        ["matcher=brute", "flush_cap=4096", "metrics=off"]
    )
    assert (config.matcher, config.flush_cap, config.metrics) == ("brute", 4096, False)
    with pytest.raises(ValueError, match="expects key=value"):
        SystemConfig().with_overrides(["matcher"])
    with pytest.raises(ValueError, match="unknown SystemConfig key 'turbo'"):
        SystemConfig().with_overrides(["turbo=1"])
    with pytest.raises(ValueError, match="flush_cap expects an integer"):
        SystemConfig().with_overrides(["flush_cap=big"])
    with pytest.raises(ValueError, match="metrics expects a boolean"):
        SystemConfig().with_overrides(["metrics=maybe"])


def test_systemconfig_from_args():
    ns = argparse.Namespace(
        backend="asyncio", codec="binary", matcher=None, advertising=None, set=["flush_cap=512"]
    )
    config = SystemConfig.from_args(ns)
    assert (config.transport, config.codec, config.flush_cap) == ("asyncio", "binary", 512)
    assert config.matcher == "indexed"  # None flags fall back to defaults
    # an explicit transport= wins over ns.backend (e.g. "both" modes)
    assert SystemConfig.from_args(ns, transport="sim").transport == "sim"


def test_runtime_knobs_are_a_subset_of_config_fields():
    assert set(RUNTIME_KNOBS) <= set(SystemConfig().to_dict())


# ------------------------------------------------- BrokerNetwork integration


def test_broker_network_rejects_typo_matcher_at_construction():
    with pytest.raises(ValueError, match="unknown matcher 'indxed'; allowed: brute, indexed"):
        BrokerNetwork(matcher="indxed")


def test_broker_network_rejects_config_plus_legacy_kwargs():
    with pytest.raises(ValueError, match="got config= and legacy knob"):
        BrokerNetwork(config=SystemConfig(), matcher="brute")


def test_broker_network_rejects_non_config_object():
    with pytest.raises(TypeError):
        BrokerNetwork(config={"matcher": "brute"})


def test_broker_network_synthesizes_config_from_legacy_kwargs():
    net = BrokerNetwork(matcher="brute", advertising="scan")
    assert net.config == SystemConfig(matcher="brute", advertising="scan")


def test_legacy_kwargs_and_config_run_byte_identically_on_sim():
    legacy = run_line_workload("sim", 3, 24)
    configured = run_line_workload("sim", 3, 24, config=SystemConfig())
    assert [
        (s.name, s.threshold, s.expected, s.received, s.latencies) for s in legacy.subscribers
    ] == [
        (s.name, s.threshold, s.expected, s.received, s.latencies) for s in configured.subscribers
    ]


# ------------------------------------------------------------------ metrics


def test_counter_and_histogram():
    counter = Counter("c")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    histogram = Histogram("h", (10, 100))
    for value in (5, 10, 11, 1000):
        histogram.observe(value)
    assert histogram.counts == [2, 1, 1]
    assert (histogram.count, histogram.sum) == (4, 1026)
    with pytest.raises(ValueError, match="sorted ascending"):
        Histogram("h", (100, 10))
    with pytest.raises(ValueError, match="at least one bucket"):
        Histogram("h", ())


def test_registry_memoizes_and_snapshots():
    registry = MetricsRegistry()
    assert registry.counter("x") is registry.counter("x")
    registry.counter("x").inc(3)
    registry.histogram("h", (1,)).observe(2)
    snapshot = registry.snapshot()
    assert snapshot["counters"] == {"x": 3}
    assert snapshot["histograms"]["h"]["count"] == 1


def test_disabled_registry_is_zero_bookkeeping():
    registry = MetricsRegistry(enabled=False)
    assert registry.counter("x") is NULL_COUNTER
    assert registry.histogram("h") is NULL_HISTOGRAM
    registry.counter("x").inc()
    registry.histogram("h").observe(9)
    assert registry.snapshot() == {"counters": {}, "histograms": {}}
    assert NULL_COUNTER.value == 0 and NULL_HISTOGRAM.count == 0


def _broker_counters(backend: str, **workload):
    """The per-broker deterministic counters after the line workload."""
    captured = {}

    def observer(net):
        captured["snapshot"] = net.transport.metrics_snapshot()

    result = run_line_workload(backend, observer=observer, **workload)
    assert result.mismatches == 0
    return {
        name: {
            key: value
            for key, value in data["counters"].items()
            if key.startswith("broker.")
        }
        for name, data in captured["snapshot"]["brokers"].items()
    }


def test_metrics_snapshot_counters_agree_across_backends():
    workload = dict(brokers=3, notifications=30)
    sim = _broker_counters("sim", **workload)
    assert sim["B1"]["broker.matches"] == 30
    assert sim["B1"]["broker.delivered_locally"] == 30
    assert sim["B3"]["broker.forwards"] == 0
    assert _broker_counters("asyncio", **workload) == sim
    assert _broker_counters("cluster", **workload) == sim


def test_metrics_disabled_config_snapshots_empty_registry_counters():
    captured = {}

    def observer(net):
        captured["snapshot"] = net.transport.metrics_snapshot()

    run_line_workload(
        "sim", 2, 6, observer=observer, config=SystemConfig(metrics=False)
    )
    for data in captured["snapshot"]["brokers"].values():
        # the integer hot-path counters remain (they are plain attributes),
        # but no registry-owned instrument may have been allocated
        assert all(key.startswith("broker.") for key in data["counters"])
        assert data["histograms"] == {}


# ------------------------------------------------------------- runtime knobs


@pytest.mark.parametrize("backend", ["sim", "asyncio"])
def test_live_flip_matches_never_flipped_oracle(backend):
    oracle = run_flip_workload("sim", 3, 40, changes={})
    flipped = run_flip_workload(backend, 3, 40)
    assert flipped.mismatches == 0
    assert flipped.delivered_values == oracle.delivered_values
    for applied in flipped.applied.values():
        assert applied == {"matcher": "brute", "advertising": "scan"}


def test_live_flip_matches_oracle_on_cluster():
    oracle = run_flip_workload("sim", 3, 40, changes={})
    flipped = run_flip_workload("cluster", 3, 40)
    assert flipped.mismatches == 0
    assert flipped.delivered_values == oracle.delivered_values


def test_flip_from_brute_scan_starting_point():
    config = SystemConfig(matcher="brute", advertising="scan")
    result = run_flip_workload("sim", 3, 20, config=config)
    assert result.mismatches == 0
    for applied in result.applied.values():
        assert applied == {"matcher": "indexed", "advertising": "incremental"}


def test_in_process_configure_rejections():
    with make_transport("sim") as transport:
        broker = transport.build_broker("B1")
        with pytest.raises(ValueError, match="unknown runtime knob\\(s\\) 'bogus'"):
            transport.configure("B1", {"bogus": 1})
        with pytest.raises(TransportError, match="no broker named 'nope'"):
            transport.configure("nope", {"matcher": "brute"})
        with pytest.raises(ValueError, match="duplicates_capacity must be a positive integer"):
            transport.configure(broker, {"duplicates_capacity": 0})
        with pytest.raises(ValueError, match="flush_cap must be a positive integer"):
            transport.set_flush_cap(0)
        applied = transport.configure("B1", {"matcher": "brute", "flush_cap": 2048})
        assert applied == {"matcher": "brute", "flush_cap": 2048}
        assert broker.matcher == "brute"


def test_cluster_configure_rejections_before_boot():
    transport = ClusterTransport()
    try:
        transport.build_broker("B1")
        with pytest.raises(ValueError, match="unknown runtime knob"):
            transport.configure("B1", {"bogus": 1})
        with pytest.raises(TransportError, match="no broker named 'nope'"):
            transport.configure("nope", {"matcher": "brute"})
        with pytest.raises(ClusterError, match="before the cluster has booted"):
            transport.configure("B1", {"matcher": "brute"})
    finally:
        transport.close()


def test_cluster_rejects_bad_value_over_the_control_channel():
    def observer(net):
        with pytest.raises(RegistryError, match="rejected 'configure': flush_cap"):
            net.transport.configure("B1", {"flush_cap": 0})
        assert net.transport.configure("B1", {}) == {}

    run_line_workload("cluster", 2, 4, observer=observer)


def test_mobility_config_fills_from_and_contradicts_system():
    filled = MobilitySystemConfig(system=SystemConfig(matcher="brute"))
    assert filled.matcher == "brute"
    with pytest.raises(ValueError, match="contradicts system.matcher"):
        MobilitySystemConfig(matcher="indexed", system=SystemConfig(matcher="brute"))
    with pytest.raises(TypeError):
        MobilitySystemConfig(system={"matcher": "brute"})


# ----------------------------------------------------------------- surfaces


def test_registry_request_without_live_channel():
    async def scenario():
        server = RegistryServer()
        await server.start()
        try:
            with pytest.raises(RegistryError, match="no live control channel for 'ghost'"):
                await server.request("ghost", "stats", timeout=0.5)
        finally:
            await server.close()

    asyncio.run(scenario())


def test_cli_metrics_json(capsys):
    assert main(["metrics", "--backend", "sim", "--json", "--publishes", "10"]) == 0
    snapshot = json.loads(capsys.readouterr().out)
    assert sorted(snapshot["brokers"]) == ["B1", "B2", "B3"]
    assert snapshot["brokers"]["B1"]["counters"]["broker.matches"] == 10


def test_cli_top_renders_bounded_frames(capsys):
    assert main(["top", "--backend", "sim", "--frames", "2", "--batch", "10"]) == 0
    out = capsys.readouterr().out
    assert "frame 1/2" in out and "frame 2/2" in out
    assert "match/s" in out


def test_cli_rejects_unknown_set_key(capsys):
    assert main(["net-demo", "--backend", "sim", "--set", "turbo=1"]) == 2
    assert "unknown SystemConfig key 'turbo'" in capsys.readouterr().err
