"""Unit tests for location spaces and the myloc binding scopes."""

import pytest

from repro.core.location import (
    LocationSpace,
    cell_grid_space,
    cell_name,
    office_floor_space,
    route_space,
)


class TestLocationSpace:
    def test_basic_lookup(self):
        space = LocationSpace({"r1": "B1", "r2": "B1", "r3": "B2"})
        assert space.broker_of("r1") == "B1"
        assert space.locations_of_broker("B1") == ["r1", "r2"]
        assert space.brokers() == ["B1", "B2"]
        assert "r1" in space and "nope" not in space
        assert len(space) == 3

    def test_unknown_location_raises(self):
        space = LocationSpace({"r1": "B1"})
        with pytest.raises(KeyError):
            space.myloc("nope")

    def test_invalid_scope_rejected(self):
        with pytest.raises(ValueError):
            LocationSpace({"r1": "B1"}, myloc_scope="galaxy")
        space = LocationSpace({"r1": "B1"})
        with pytest.raises(ValueError):
            space.myloc("r1", scope="galaxy")

    def test_location_scope(self):
        space = LocationSpace({"r1": "B1", "r2": "B1"})
        assert space.myloc("r1") == frozenset({"r1"})

    def test_region_scope(self):
        space = LocationSpace(
            {"r1": "B1", "r2": "B1", "r3": "B2"},
            regions={"r1": "north", "r2": "north", "r3": "south"},
            myloc_scope="region",
        )
        assert space.myloc("r1") == frozenset({"r1", "r2"})
        assert space.myloc("r3") == frozenset({"r3"})

    def test_region_scope_without_region_falls_back_to_location(self):
        space = LocationSpace({"r1": "B1"}, myloc_scope="region")
        assert space.myloc("r1") == frozenset({"r1"})

    def test_neighbourhood_scope(self):
        space = LocationSpace(
            {"a": "B1", "b": "B1", "c": "B2"},
            adjacency={"a": {"b"}, "b": {"a", "c"}, "c": {"b"}},
            myloc_scope="neighbourhood",
        )
        assert space.myloc("b") == frozenset({"a", "b", "c"})

    def test_broker_scope(self):
        space = LocationSpace({"r1": "B1", "r2": "B1", "r3": "B2"}, myloc_scope="broker")
        assert space.myloc("r1") == frozenset({"r1", "r2"})

    def test_myloc_for_broker(self):
        space = LocationSpace({"r1": "B1", "r2": "B1", "r3": "B2"})
        assert space.myloc_for_broker("B1") == frozenset({"r1", "r2"})
        assert space.myloc_for_broker("B2") == frozenset({"r3"})


class TestBuilders:
    def test_office_floor_mapping(self):
        space = office_floor_space(n_rooms=8, rooms_per_broker=4)
        assert len(space) == 8
        assert space.brokers() == ["B1", "B2"]
        rooms = space.locations
        assert rooms == sorted(rooms)  # zero-padded names sort numerically
        assert space.broker_of(rooms[0]) == "B1"
        assert space.broker_of(rooms[-1]) == "B2"

    def test_office_floor_adjacency_is_corridor(self):
        space = office_floor_space(n_rooms=4, rooms_per_broker=2)
        rooms = space.locations
        assert space.neighbours_of(rooms[0]) == {rooms[1]}
        assert space.neighbours_of(rooms[1]) == {rooms[0], rooms[2]}

    def test_office_floor_rejects_bad_params(self):
        with pytest.raises(ValueError):
            office_floor_space(0)

    def test_route_space_defaults_to_neighbourhood_scope(self):
        space = route_space(n_segments=6, segments_per_broker=3)
        segments = space.locations
        assert space.myloc_scope == "neighbourhood"
        assert segments[1] in space.myloc(segments[0])

    def test_cell_grid_space_adjacency(self):
        space = cell_grid_space(3, 3)
        centre = cell_name(1, 1)
        assert space.neighbours_of(centre) == {
            cell_name(0, 1),
            cell_name(2, 1),
            cell_name(1, 0),
            cell_name(1, 2),
        }
        corner = cell_name(0, 0)
        assert len(space.neighbours_of(corner)) == 2

    def test_cell_grid_space_default_brokers(self):
        space = cell_grid_space(2, 2)
        assert space.broker_of(cell_name(0, 0)) == "B_0_0"

    def test_cell_grid_space_custom_broker_mapping_and_regions(self):
        mapping = {(r, c): f"X{r}" for r in range(2) for c in range(3)}
        space = cell_grid_space(2, 3, broker_for_cell=mapping, region_rows=1, myloc_scope="region")
        assert space.broker_of(cell_name(1, 2)) == "X1"
        assert space.region_of(cell_name(0, 1)) == "region-0"
        assert space.myloc(cell_name(0, 1)) == frozenset({cell_name(0, 0), cell_name(0, 1), cell_name(0, 2)})
