"""Scan vs incremental subscription-control equivalence.

The incremental forwarded-filter index (``advertising="incremental"``) is a
maintained view of exactly the state the scan baseline recomputes per query,
so both modes must make identical forwarding decisions — byte-identical
control messages up to the generated ids of merged subscriptions.  These
tests drive randomized subscribe/unsubscribe/detach churn through both modes
side by side, at the strategy level (against a fake broker, comparing the
emitted control-message log) and end to end (comparing deliveries, table
contents and broker-link message counts).
"""

from __future__ import annotations

import random

import pytest

from repro.net.simulator import Simulator
from repro.pubsub.broker_network import line_topology, random_tree_topology
from repro.pubsub.filters import (
    Equals,
    Filter,
    InSet,
    Prefix,
    Range,
    match_all,
)
from repro.pubsub.notification import Notification
from repro.pubsub.routing import ADVERTISING_NAMES, STRATEGIES, make_strategy
from repro.pubsub.subscription import Subscription
from repro.pubsub.testing import RecordingBroker as FakeBroker
from repro.pubsub.testing import normalize_merged_ids as normalized

SERVICES = ["temperature", "stock", "news", "traffic"]
LOCATIONS = ["r1", "r2", "r3", "r4"]

#: strategies whose forwarding decisions depend on the forwarded-filter set
INDEXED_STRATEGIES = ("identity", "covering", "merging")


def random_filter(rng: random.Random) -> Filter:
    """Overlap-heavy filters: equality, ranges, prefixes, the empty filter."""
    roll = rng.random()
    if roll < 0.05:
        return match_all()
    constraints = []
    if roll < 0.45:
        constraints.append(Equals("service", rng.choice(SERVICES)))
    elif roll < 0.60:
        constraints.append(InSet("location", rng.sample(LOCATIONS, rng.randint(1, 3))))
    elif roll < 0.75:
        low = rng.randint(0, 30)
        constraints.append(Range("value", low, low + rng.choice([5, 10, 20])))
    else:
        constraints.append(Prefix("service", rng.choice(["t", "s", "ne"])))
    if rng.random() < 0.5:
        low = rng.randint(0, 30)
        constraints.append(Range("value", low, low + rng.choice([10, 25])))
    return Filter(constraints)


def drive(strategy_name: str, advertising: str, seed: int, steps: int = 160):
    """Run a random subscribe/unsubscribe workload; return (log, forwarded state)."""
    rng = random.Random(seed)
    broker = FakeBroker(["N1", "N2", "N3"])
    strategy = make_strategy(strategy_name, broker, advertising=advertising)
    links = ["c1", "c2", "N1", "N2"]  # subscriptions arrive from clients and brokers
    live = []
    for step in range(steps):
        roll = rng.random()
        if roll < 0.62 or not live:
            sub_id = f"s{step}"
            filter = random_filter(rng)
            from_link = rng.choice(links)
            strategy.handle_subscribe(
                Subscription(sub_id=sub_id, filter=filter, subscriber=from_link),
                from_link,
            )
            live.append((sub_id, filter, from_link))
        elif roll < 0.70:
            # re-subscribe a live subscription from another link: an
            # already-forwarded sub_id gains a second routing-table entry
            sub_id, filter, from_link = rng.choice(live)
            other_link = rng.choice([l for l in links if l != from_link])
            strategy.handle_subscribe(
                Subscription(sub_id=sub_id, filter=filter, subscriber=other_link),
                other_link,
            )
        else:
            index = rng.randrange(len(live))
            sub_id, filter, from_link = live.pop(index)
            strategy.handle_unsubscribe(sub_id, filter, from_link)
    forwarded = {
        sub_id: sorted(links) for sub_id, links in strategy._forwarded.items() if links
    }
    return broker.log, forwarded


class TestStrategyLevelEquivalence:
    @pytest.mark.parametrize("strategy", INDEXED_STRATEGIES)
    @pytest.mark.parametrize("seed", range(6))
    def test_identical_control_messages_under_churn(self, strategy, seed):
        scan_log, scan_fwd = drive(strategy, "scan", seed)
        inc_log, inc_fwd = drive(strategy, "incremental", seed)
        assert normalized(scan_log) == normalized(inc_log)
        assert {k: v for k, v in scan_fwd.items() if not k.startswith("merged-")} == {
            k: v for k, v in inc_fwd.items() if not k.startswith("merged-")
        }

    @pytest.mark.parametrize("strategy", INDEXED_STRATEGIES)
    def test_set_advertising_rebuilds_index_mid_flight(self, strategy):
        rng = random.Random(42)
        broker = FakeBroker(["N1", "N2"])
        strategy_obj = make_strategy(strategy, broker, advertising="scan")
        live = []
        for step in range(40):
            sub_id = f"s{step}"
            filter = random_filter(rng)
            strategy_obj.handle_subscribe(
                Subscription(sub_id=sub_id, filter=filter, subscriber="c1"), "c1"
            )
            live.append((sub_id, filter))
        strategy_obj.set_advertising("incremental")
        assert strategy_obj.advertising == "incremental"
        # decisions after the switch must match a pure-scan twin
        twin_broker = FakeBroker(["N1", "N2"])
        twin = make_strategy(strategy, twin_broker, advertising="scan")
        for sub_id, filter in live:
            twin.handle_subscribe(
                Subscription(sub_id=sub_id, filter=filter, subscriber="c1"), "c1"
            )
        probe_rng = random.Random(7)
        for i in range(60):
            f = random_filter(probe_rng)
            for link in ("N1", "N2"):
                assert strategy_obj.needs_forwarding(f, link) == twin.needs_forwarding(f, link)
        # switching back drops the index and keeps agreeing
        strategy_obj.set_advertising("scan")
        for i in range(20):
            f = random_filter(probe_rng)
            assert strategy_obj.needs_forwarding(f, "N1") == twin.needs_forwarding(f, "N1")

    def test_unknown_advertising_rejected(self):
        broker = FakeBroker(["N1"])
        with pytest.raises(ValueError):
            make_strategy("covering", broker, advertising="magic")
        strategy = make_strategy("covering", broker)
        with pytest.raises(ValueError):
            strategy.set_advertising("magic")

    def test_reforward_dedupes_multi_link_subscriptions(self):
        """A subscription with entries on several links re-forwards once per link."""
        broker = FakeBroker(["N1", "N2"])
        strategy = make_strategy("covering", broker, advertising="incremental")
        broad = Filter([Equals("service", "t")])
        narrow = Filter([Equals("service", "t"), Equals("location", "r1")])
        strategy.handle_subscribe(Subscription("cover", broad, "c1"), "c1")
        # the same narrow subscription arrives over two client links: its
        # forwarding is suppressed by the broad cover on both broker links
        strategy.handle_subscribe(Subscription("multi", narrow, "c1"), "c1")
        strategy.handle_subscribe(Subscription("multi", narrow, "c2"), "c2")
        broker.log.clear()
        strategy.handle_unsubscribe("cover", broad, "c1")
        shadow_forwards = [
            entry for entry in broker.log if entry[0] == "subscribe" and entry[2] == "multi"
        ]
        assert sorted(e[1] for e in shadow_forwards) == ["N1", "N2"]
        assert len(shadow_forwards) == len(set(shadow_forwards))

    @pytest.mark.parametrize("advertising", ADVERTISING_NAMES)
    def test_reforward_tries_every_entry_filter(self, advertising):
        """A multi-link subscription whose entries carry *different* filters:
        if the first entry's filter is still covered but the second's is not,
        the second must be re-advertised (regression: the dedupe pass used to
        keep only the first entry)."""
        broker = FakeBroker(["N1"])
        strategy = make_strategy("covering", broker, advertising=advertising)
        f1 = Filter([Equals("service", "t")])
        f2 = Filter([Equals("service", "s")])
        everything = match_all()
        # 'mid' advertises f1; 'broad' advertises match-all (covers f1, f2)
        strategy.handle_subscribe(Subscription("mid", f1, "c1"), "c1")
        strategy.handle_subscribe(Subscription("broad", everything, "c2"), "c2")
        # 'multi' has entry f1 on c1 and entry f2 on c3 — both suppressed
        strategy.handle_subscribe(Subscription("multi", f1, "c1"), "c1")
        strategy.handle_subscribe(Subscription("multi", f2, "c3"), "c3")
        broker.log.clear()
        strategy.handle_unsubscribe("broad", everything, "c2")
        # f1 stays covered by 'mid'; f2 is uncovered and must come back
        multi_forwards = [
            entry for entry in broker.log if entry[0] == "subscribe" and entry[2] == "multi"
        ]
        assert [entry[3] for entry in multi_forwards] == [f2.key()]

    def test_nan_equality_filter_is_not_self_covering(self):
        """covers() is not reflexive for NaN-valued equality constraints
        (nan != nan), so a second identical NaN subscription must still be
        forwarded in both modes (regression: the incremental exact-key
        shortcut used to suppress it)."""
        nan = float("nan")
        logs = {}
        for advertising in ADVERTISING_NAMES:
            broker = FakeBroker(["N1"])
            strategy = make_strategy("covering", broker, advertising=advertising)
            strategy.handle_subscribe(Subscription("a", Filter([Equals("x", nan)]), "c1"), "c1")
            strategy.handle_subscribe(Subscription("b", Filter([Equals("x", nan)]), "c1"), "c1")
            logs[advertising] = broker.log
        assert logs["scan"] == logs["incremental"]
        assert [entry[2] for entry in logs["scan"]] == ["a", "b"]

    def test_scan_merging_refolds_after_resubscription(self):
        """Scan-mode merging must re-fold when an already-forwarded sub_id
        gains a table entry from a second link (regression: the dirty flag
        was only set in incremental mode, silencing the merge)."""
        logs = {}
        for advertising in ADVERTISING_NAMES:
            broker = FakeBroker(["N1"])
            strategy = make_strategy("merging", broker, advertising=advertising)
            for i in range(strategy.merge_threshold):
                strategy.handle_subscribe(
                    Subscription(f"s{i}", Filter([Equals("value", i)]), "c1"), "c1"
                )
            # the threshold-crossing advert comes from a second link of s0
            strategy.handle_subscribe(
                Subscription("s0", Filter([Equals("value", 0)]), "c2"), "c2"
            )
            logs[advertising] = normalized(broker.log)
        assert logs["scan"] == logs["incremental"]
        assert any(sub_id.startswith("merged#") for _k, _l, sub_id, _f in logs["scan"])


def run_network(strategy: str, advertising: str, seed: int):
    """End-to-end churn: subscribe, unsubscribe, detach, publish."""
    rng = random.Random(seed)
    sim = Simulator()
    network = random_tree_topology(
        sim, 6, routing=strategy, seed=seed, advertising=advertising
    )
    brokers = network.broker_names()
    clients = []
    subs = []
    for i in range(14):
        client = network.add_client(f"sub-{i}", brokers[i % len(brokers)])
        # explicit ids keep the two runs comparable (the default ids come
        # from a process-global counter)
        subs.append(client.subscribe(random_filter(rng), sub_id=f"s{i}"))
        clients.append(client)
    sim.run_until_idle()
    # churn: some unsubscribe, one client detaches entirely
    for client, sub in zip(clients[10:12], subs[10:12]):
        client.unsubscribe(sub)
    sim.run_until_idle()
    clients[12].disconnect(notify_broker=True)
    sim.run_until_idle()
    publisher = network.add_client("pub", brokers[0])
    for i in range(60):
        attrs = {
            "service": rng.choice(SERVICES),
            "location": rng.choice(LOCATIONS),
            "value": rng.randint(0, 50),
        }
        publisher.publish(Notification(attrs, notification_id=5000 + i))
    sim.run_until_idle()
    deliveries = {
        c.name: sorted(d.notification.notification_id for d in c.deliveries)
        for c in clients[:10]
    }
    tables = {
        name: {
            (e.sub_id, e.link, e.filter.key())
            for e in (
                entry
                for link in broker.routing_table.links()
                for entry in broker.routing_table.entries_for_link(link)
            )
            if not e.sub_id.startswith("merged-")
        }
        for name, broker in network.brokers.items()
    }
    control = network.broker_link_messages("subscribe") + network.broker_link_messages(
        "unsubscribe"
    )
    return deliveries, tables, control


class TestEndToEndEquivalence:
    @pytest.mark.parametrize("strategy", INDEXED_STRATEGIES)
    @pytest.mark.parametrize("seed", range(3))
    def test_identical_deliveries_tables_and_traffic(self, strategy, seed):
        scan = run_network(strategy, "scan", seed)
        incremental = run_network(strategy, "incremental", seed)
        assert scan[0] == incremental[0]  # deliveries
        assert scan[1] == incremental[1]  # routing-table contents
        assert scan[2] == incremental[2]  # control traffic volume


class TestKnobThreading:
    def test_broker_exposes_advertising(self):
        sim = Simulator()
        net = line_topology(sim, 2, routing="covering", advertising="scan")
        assert all(b.advertising == "scan" for b in net.brokers.values())
        net.brokers["B1"].set_advertising("incremental")
        assert net.brokers["B1"].advertising == "incremental"

    def test_advertising_names_registry(self):
        assert ADVERTISING_NAMES == ("scan", "incremental")
        assert set(INDEXED_STRATEGIES) < set(STRATEGIES)

    def test_middleware_config_overrides_when_explicit(self):
        from repro.core.location import LocationSpace
        from repro.core.middleware import MobilePubSub, MobilitySystemConfig

        sim = Simulator()
        net = line_topology(sim, 2, routing="covering", advertising="scan")
        space = LocationSpace({"r1": "B1", "r2": "B2"})
        MobilePubSub(sim, net, space, config=MobilitySystemConfig(advertising="incremental"))
        assert all(b.advertising == "incremental" for b in net.brokers.values())

    def test_middleware_config_none_keeps_network_choice(self):
        from repro.core.location import LocationSpace
        from repro.core.middleware import MobilePubSub, MobilitySystemConfig

        sim = Simulator()
        net = line_topology(sim, 2, routing="covering", advertising="scan")
        space = LocationSpace({"r1": "B1", "r2": "B2"})
        MobilePubSub(sim, net, space, config=MobilitySystemConfig())
        assert all(b.advertising == "scan" for b in net.brokers.values())
