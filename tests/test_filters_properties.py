"""Property-based tests (hypothesis) for the filter algebra.

Key invariants:

* soundness of covering: if ``f.covers(g)`` then every notification matching
  ``g`` matches ``f``;
* soundness of non-overlap: if ``not f.overlaps(g)`` then no notification
  matches both;
* the merge of two filters covers both operands;
* filter equality is consistent with hashing.
"""

from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from repro.pubsub.filters import Equals, Filter, InSet, Prefix, Range

ATTRIBUTES = ["service", "location", "value", "priority"]
STRING_VALUES = ["a", "b", "c", "room-1", "room-2", "news", "news/sport"]


@st.composite
def constraints(draw):
    attribute = draw(st.sampled_from(ATTRIBUTES))
    kind = draw(st.sampled_from(["eq", "in", "range", "prefix"]))
    if kind == "eq":
        value = draw(st.sampled_from(STRING_VALUES) | st.integers(-5, 25))
        return Equals(attribute, value)
    if kind == "in":
        values = draw(st.sets(st.sampled_from(STRING_VALUES) | st.integers(-5, 25), min_size=1, max_size=4))
        return InSet(attribute, values)
    if kind == "range":
        low = draw(st.integers(-10, 20))
        width = draw(st.integers(0, 15))
        return Range(attribute, low=low, high=low + width)
    prefix = draw(st.sampled_from(["n", "ne", "news", "news/", "room"]))
    return Prefix(attribute, prefix)


@st.composite
def filters(draw):
    return Filter(draw(st.lists(constraints(), min_size=0, max_size=3)))


@st.composite
def notifications(draw):
    attrs = {}
    for attribute in ATTRIBUTES:
        if draw(st.booleans()):
            attrs[attribute] = draw(st.sampled_from(STRING_VALUES) | st.integers(-10, 30))
    return attrs


@settings(max_examples=200, deadline=None)
@given(f=filters(), g=filters(), n=notifications())
def test_covering_is_sound(f, g, n):
    if f.covers(g) and g.matches(n):
        assert f.matches(n)


@settings(max_examples=200, deadline=None)
@given(f=filters(), g=filters(), n=notifications())
def test_non_overlap_is_sound(f, g, n):
    if not f.overlaps(g):
        assert not (f.matches(n) and g.matches(n))


@settings(max_examples=150, deadline=None)
@given(f=filters(), g=filters())
def test_merge_covers_both_operands(f, g):
    merged = f.merge(g)
    assert merged.covers(f)
    assert merged.covers(g)


@settings(max_examples=150, deadline=None)
@given(f=filters(), g=filters(), n=notifications())
def test_conjoin_is_intersection(f, g, n):
    combined = f.conjoin(g)
    assert combined.matches(n) == (f.matches(n) and g.matches(n))


@settings(max_examples=150, deadline=None)
@given(f=filters())
def test_covering_reflexive(f):
    assert f.covers(f)


@settings(max_examples=150, deadline=None)
@given(f=filters())
def test_empty_filter_covers_everything(f):
    assert Filter(()).covers(f)


@settings(max_examples=150, deadline=None)
@given(f=filters(), g=filters())
def test_equality_consistent_with_hash(f, g):
    if f == g:
        assert hash(f) == hash(g)


@settings(max_examples=150, deadline=None)
@given(f=filters(), n=notifications())
def test_match_is_deterministic(f, n):
    assert f.matches(n) == f.matches(n)
