"""End-to-end invariants of the full system under randomised movement.

These tests run complete scenarios (workload + movement + replication) and
assert the system-wide guarantees the paper's algorithm promises:

* **shadow-set consistency** — after the system quiesces, the brokers hosting
  a client's virtual clients are exactly the current broker plus its ``nlb``
  neighbourhood (Sect. 3.2.1/3.2.3);
* **no duplicate deliveries** — replays and live deliveries never hand the
  same notification to the device twice;
* **replay ordering** — replayed notifications arrive in publication order;
* **myloc precision** — live deliveries always match the location the client
  reported at the time.
"""

import random

import pytest

from repro.core.location_filter import location_dependent
from repro.core.metrics import evaluate_mobile_delivery
from repro.core.middleware import MobilitySystemConfig
from repro.mobility.models import MobilityDriver, RandomWalkMobility
from repro.mobility.scenario import build_grid_scenario, build_office_scenario
from repro.mobility.workload import temperature_workload


def run_random_walk_scenario(seed, duration=60.0, rows=3, cols=3, dwell=5.0):
    scenario = build_grid_scenario(rows=rows, cols=cols, config=MobilitySystemConfig())
    publishers, recorder = temperature_workload(
        scenario.system, period=2.0, recorder=scenario.recorder, until=duration
    )
    template = location_dependent({"service": "temperature"})
    start = scenario.space.locations[seed % len(scenario.space.locations)]
    model = RandomWalkMobility(scenario.space, start=start, dwell_time=dwell)
    subscriber = scenario.add_roaming_subscriber(
        "walker", template, model, duration=duration, seed=seed
    )
    scenario.run(duration)
    publishers.stop()
    scenario.sim.run_until_idle()
    return scenario, subscriber


@pytest.mark.parametrize("seed", [1, 2, 3])
class TestSystemInvariants:
    def test_shadow_set_matches_nlb_of_current_broker(self, seed):
        scenario, subscriber = run_random_walk_scenario(seed)
        client = subscriber.client
        current = client.current_broker
        assert current is not None
        expected = {current} | set(scenario.system.movement_graph.nlb(current))
        hosting = {
            broker
            for broker, replicator in scenario.system.replicators.items()
            if client.name in replicator.virtual_clients
        }
        assert hosting == expected
        # exactly one of them is active
        active = [
            broker
            for broker in hosting
            if scenario.system.replicators[broker].virtual_clients[client.name].is_active
        ]
        assert active == [current]

    def test_no_duplicate_deliveries(self, seed):
        _scenario, subscriber = run_random_walk_scenario(seed)
        assert subscriber.client.duplicate_deliveries() == 0

    def test_live_deliveries_match_reported_location(self, seed):
        scenario, subscriber = run_random_walk_scenario(seed)
        for delivery in subscriber.client.live_deliveries():
            assert delivery.location is not None
            myloc = scenario.space.myloc(delivery.location)
            assert delivery.notification["location"] in myloc

    def test_replay_preserves_publication_order(self, seed):
        _scenario, subscriber = run_random_walk_scenario(seed)
        deliveries = subscriber.client.deliveries
        # within each attachment's replay burst, publication times must be non-decreasing
        index = 0
        while index < len(deliveries):
            if not deliveries[index].replayed:
                index += 1
                continue
            burst = []
            while index < len(deliveries) and deliveries[index].replayed:
                burst.append(deliveries[index])
                index += 1
            times = [d.notification.published_at for d in burst if d.notification.published_at is not None]
            assert times == sorted(times)

    def test_delivery_rate_is_high_with_full_support(self, seed):
        scenario, subscriber = run_random_walk_scenario(seed)
        outcome = evaluate_mobile_delivery(
            subscriber.client, scenario.recorder.published, subscriber.template, scenario.space
        )
        assert outcome.relevant > 0
        assert outcome.delivery_rate >= 0.9


class TestMultiClientScenario:
    def test_clients_do_not_interfere(self):
        duration = 40.0
        scenario = build_office_scenario(n_rooms=9, rooms_per_broker=3)
        publishers, recorder = temperature_workload(
            scenario.system, period=2.0, recorder=scenario.recorder, until=duration
        )
        template = location_dependent({"service": "temperature"})
        subscribers = []
        for index in range(4):
            start = scenario.space.locations[index * 2]
            model = RandomWalkMobility(scenario.space, start=start, dwell_time=6.0)
            subscribers.append(
                scenario.add_roaming_subscriber(f"c{index}", template, model, duration=duration, seed=index)
            )
        scenario.run(duration)
        publishers.stop()
        scenario.sim.run_until_idle()

        for subscriber in subscribers:
            outcome = scenario.evaluate(subscriber)
            assert outcome.delivery_rate >= 0.85
            assert subscriber.client.duplicate_deliveries() == 0

        # every replicator hosts at most one virtual client per mobile client
        for replicator in scenario.system.replicators.values():
            assert len(replicator.virtual_clients) == len(set(replicator.virtual_clients))

    def test_client_removal_leaves_no_state_behind(self):
        scenario = build_office_scenario(n_rooms=6, rooms_per_broker=2)
        template = location_dependent({"service": "temperature"})
        client = scenario.system.add_mobile_client("ephemeral")
        client.subscribe_location(template)
        scenario.system.attach(client, location=scenario.space.locations[0])
        scenario.sim.run_until_idle()
        scenario.system.move(client, scenario.space.locations[3])
        scenario.sim.run_until_idle()
        scenario.system.remove_client(client)
        scenario.sim.run_until_idle()
        assert scenario.system.total_virtual_clients() == 0
        for broker in scenario.network.brokers.values():
            assert not any("ephemeral" in sub for sub in broker.routing_table.subscription_ids())
