"""Mobility layer on real sockets: cross-checks against the simulator.

The contract mirrors the transport layer's own cross-check suite: the same
fixed handover scenario (attach → walk across the broker line → power off →
exception-mode reappearance, under the NLB predictor) must deliver the
*identical* ``(notification_id, replayed)`` multiset per mobile client on
the deterministic simulator and on the asyncio TCP backend.  Phase-exact
quiescence is what makes that equality well-defined; any divergence means
either the wire codec, the socket-backed wireless channel or the replicator
protocol changed observable behaviour on one substrate.
"""

import pytest

from repro.core.location import LocationSpace
from repro.core.middleware import MobilePubSub, MobilitySystemConfig
from repro.mobility.handover_workload import cross_check_backends, run_handover_workload
from repro.net.process import Message, Process
from repro.net.wireless import WirelessChannel
from repro.pubsub.broker_network import line_topology


# ------------------------------------------------------------- backend parity


class TestHandoverCrossCheck:
    def test_asyncio_handover_delivers_identical_sets_to_simulator(self):
        """The acceptance gate: 3-broker walk + exception mode, sim == asyncio."""
        results, mismatches = cross_check_backends(
            backends=("sim", "asyncio"), brokers=3, publishes_per_phase=4
        )
        assert mismatches == []
        reference = results["sim"]
        # the scenario must actually exercise the machinery it claims to
        assert reference.delivered_total() > 0
        assert reference.handovers >= 3, "the walk must hand the client over"
        assert reference.exception_activations >= 1, "power-on far away must hit exception mode"
        assert any(outcome.replayed for outcome in reference.clients), (
            "shadow buffers must replay something, or the scenario lost its point"
        )
        # both backends agree on the protocol-level counters too (every phase
        # is quiesced, so these are deterministic, not just the deliveries)
        candidate = results["asyncio"]
        assert candidate.handovers == reference.handovers
        assert candidate.exception_activations == reference.exception_activations
        assert candidate.control_messages == reference.control_messages

    def test_cross_check_holds_without_prediction(self):
        """The reactive baseline (no shadows) must also be substrate-invariant."""
        results, mismatches = cross_check_backends(
            backends=("sim", "asyncio"), brokers=3, publishes_per_phase=2, predictor="none"
        )
        assert mismatches == []
        assert results["sim"].shadows_created == 0

    def test_asyncio_handover_latencies_are_real(self):
        result = run_handover_workload("asyncio", brokers=3, publishes_per_phase=1)
        latencies = result.all_handover_latencies()
        assert latencies, "every attach must be welcomed"
        # the connect_latency floor (10ms) is honoured by the real clock
        assert min(latencies) >= 0.01


# ------------------------------------------------------ facade backend checks


def test_mobility_layer_accepts_asyncio_backend():
    net = line_topology(n_brokers=2, transport="asyncio", link_latency=0.0)
    space = LocationSpace({"l1": "B1", "l2": "B2"}, adjacency={"l1": ["l2"], "l2": ["l1"]})
    system = MobilePubSub(None, net, space, config=MobilitySystemConfig(transport="asyncio"))
    try:
        client = system.add_mobile_client("m1")
        system.attach(client, location="l1")
        system.run_until_idle()
        assert client.connected
        assert client.setup_latencies(), "the replicator must welcome the client over TCP"
    finally:
        system.close()


def test_mobility_layer_rejects_cluster_backend():
    net = line_topology(n_brokers=2, transport="cluster")
    try:
        space = LocationSpace({"l1": "B1"})
        with pytest.raises(NotImplementedError):
            MobilePubSub(net.sim, net, space)
    finally:
        net.close()


# --------------------------------------------------- wireless channel on TCP


class Recorder(Process):
    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.received = []

    def on_message(self, message):
        self.received.append(message)


@pytest.fixture
def asyncio_channel():
    from repro.net.transport import AsyncioTransport

    transport = AsyncioTransport()
    device = Recorder(transport.clock, "device")
    ap1 = Recorder(transport.clock, "ap1")
    ap2 = Recorder(transport.clock, "ap2")
    channel = WirelessChannel(
        transport.clock, device, latency=0.0, connect_latency=0.005, transport=transport
    )
    yield transport, channel, device, ap1, ap2
    transport.close()


class TestWirelessChannelOnAsyncio:
    def test_attach_opens_real_link_and_fires_callbacks(self, asyncio_channel):
        transport, channel, device, ap1, _ap2 = asyncio_channel
        events = []
        channel.on_connect(lambda name: events.append(("connect", name)))
        channel.attach(ap1)
        assert not channel.connected, "attachment must not complete synchronously"
        transport.run_until_idle()
        assert channel.connected and channel.access_point_name == "ap1"
        assert events == [("connect", "ap1")]
        assert channel.send_up(Message("ping", payload=1))
        transport.run_until_idle()
        assert [m.payload for m in ap1.received] == [1]
        assert ap1.received[0].sender == "device"

    def test_handover_switches_access_points(self, asyncio_channel):
        transport, channel, device, ap1, ap2 = asyncio_channel
        channel.attach(ap1)
        transport.run_until_idle()
        channel.handover(ap2, gap=0.0)
        transport.run_until_idle()
        assert channel.access_point_name == "ap2"
        channel.send_up(Message("ping", payload=2))
        transport.run_until_idle()
        assert [m.payload for m in ap2.received] == [2]
        assert ap1.received == []
        assert channel.stats.handovers == 1
        assert channel.stats.connects == 2

    def test_detach_drops_uplink_traffic(self, asyncio_channel):
        transport, channel, _device, ap1, _ap2 = asyncio_channel
        channel.attach(ap1)
        transport.run_until_idle()
        channel.detach()
        assert not channel.connected
        assert not channel.send_up(Message("ping", payload=3))
        assert channel.stats.dropped_while_disconnected == 1
        transport.run_until_idle()
        assert [m.payload for m in ap1.received] == []

    def test_concurrent_attach_latest_instruction_wins(self, asyncio_channel):
        # the superseded establishment is discarded, the newest attach wins
        transport, channel, _device, ap1, ap2 = asyncio_channel
        channel.attach(ap1)
        channel.attach(ap2)
        transport.run_until_idle()
        assert channel.connected
        assert channel.access_point_name == "ap2"
        assert channel.stats.connects == 1, "only one attachment may win"

    def test_detach_cancels_pending_attach(self, asyncio_channel):
        # regression: a powered-off device must not end up connected because
        # an older attach completed after the detach
        transport, channel, _device, ap1, _ap2 = asyncio_channel
        channel.attach(ap1)
        channel.detach()
        transport.run_until_idle()
        assert not channel.connected
        assert channel.stats.connects == 0

    def test_double_attach_to_same_access_point_keeps_a_working_link(self, asyncio_channel):
        # regression: the discarded duplicate establishment used to clobber
        # the winner's routing entries, leaving connected=True but send_up
        # raising KeyError
        transport, channel, device, ap1, _ap2 = asyncio_channel
        channel.attach(ap1)
        channel.attach(ap1)
        transport.run_until_idle()
        assert channel.connected and channel.access_point_name == "ap1"
        assert device.has_link("ap1") and ap1.has_link("device")
        assert channel.send_up(Message("ping", payload=7))
        transport.run_until_idle()
        assert [m.payload for m in ap1.received] == [7]

    def test_open_dynamic_link_from_inside_the_running_loop(self):
        from repro.net.transport import AsyncioTransport

        transport = AsyncioTransport()
        try:
            a = Recorder(transport.clock, "a")
            b = Recorder(transport.clock, "b")
            opened = []

            def open_late():
                transport.open_dynamic_link(a, b, latency=0.0, ready=opened.append)

            transport.clock.schedule(0.005, open_late)
            transport.run_until_idle()
            assert len(opened) == 1
            a.send("b", Message("x", payload=42))
            transport.run_until_idle()
            assert [m.payload for m in b.received] == [42]
        finally:
            transport.close()


def test_sim_transport_dynamic_link_is_synchronous():
    from repro.net.simulator import Simulator
    from repro.net.transport import SimTransport

    transport = SimTransport(Simulator())
    a = Recorder(transport.clock, "a")
    b = Recorder(transport.clock, "b")
    opened = []
    link = transport.open_dynamic_link(a, b, latency=0.0, ready=opened.append)
    assert opened == [link], "the simulator attaches dynamic links immediately"
    a.send("b", Message("x", payload=1))
    transport.run_until_idle()
    assert [m.payload for m in b.received] == [1]
