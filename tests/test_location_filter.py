"""Unit tests for location-dependent filter templates (the myloc marker)."""

import pytest

from repro.core.location import LocationSpace, office_floor_space
from repro.core.location_filter import (
    MYLOC,
    LocationDependentFilter,
    UnboundLocationError,
    is_location_relevant,
    location_dependent,
)
from repro.pubsub.filters import Equals, Filter


@pytest.fixture
def space():
    return LocationSpace(
        {"r1": "B1", "r2": "B1", "r3": "B2"},
        adjacency={"r1": {"r2"}, "r2": {"r1", "r3"}, "r3": {"r2"}},
    )


class TestTemplateConstruction:
    def test_from_dict_spec(self):
        template = location_dependent({"service": "temperature"})
        assert isinstance(template, LocationDependentFilter)
        assert template.static_filter.matches({"service": "temperature"})

    def test_myloc_marker_in_spec_is_tolerated(self):
        template = location_dependent({"service": "temperature", "location": MYLOC})
        assert template.static_filter.attributes == ["service"]

    def test_from_prebuilt_filter(self):
        static = Filter([Equals("service", "menu")])
        template = location_dependent(static)
        assert template.static_filter is static

    def test_scope_override_stored(self):
        template = location_dependent({"service": "weather"}, scope="region")
        assert template.scope == "region"


class TestBinding:
    def test_bind_adds_location_constraint(self, space):
        template = location_dependent({"service": "temperature"})
        bound = template.bind({"r1", "r2"})
        assert bound.matches({"service": "temperature", "location": "r1"})
        assert not bound.matches({"service": "temperature", "location": "r3"})
        assert not bound.matches({"service": "stock", "location": "r1"})
        assert not bound.matches({"service": "temperature"})  # no location attribute

    def test_bind_empty_set_rejected(self):
        template = location_dependent({"service": "temperature"})
        with pytest.raises(UnboundLocationError):
            template.bind([])

    def test_bind_for_location_uses_space_myloc(self, space):
        template = location_dependent({"service": "temperature"})
        bound = template.bind_for_location(space, "r1")
        assert bound.matches({"service": "temperature", "location": "r1"})
        assert not bound.matches({"service": "temperature", "location": "r2"})

    def test_bind_for_location_with_scope_override(self, space):
        template = location_dependent({"service": "temperature"}, scope="neighbourhood")
        bound = template.bind_for_location(space, "r2")
        for room in ("r1", "r2", "r3"):
            assert bound.matches({"service": "temperature", "location": room})

    def test_bind_for_broker_covers_whole_coverage_area(self, space):
        template = location_dependent({"service": "temperature"})
        bound = template.bind_for_broker(space, "B1")
        assert bound.matches({"service": "temperature", "location": "r1"})
        assert bound.matches({"service": "temperature", "location": "r2"})
        assert not bound.matches({"service": "temperature", "location": "r3"})

    def test_custom_location_attribute(self, space):
        template = location_dependent({"service": "t"}, location_attribute="cell")
        bound = template.bind({"r1"})
        assert bound.matches({"service": "t", "cell": "r1"})
        assert not bound.matches({"service": "t", "location": "r1"})


class TestHelpers:
    def test_matches_ignoring_location(self):
        template = location_dependent({"service": "temperature"})
        assert template.matches_ignoring_location({"service": "temperature", "location": "anywhere"})
        assert not template.matches_ignoring_location({"service": "stock"})

    def test_is_location_relevant(self, space):
        template = location_dependent({"service": "temperature"})
        notification = {"service": "temperature", "location": "r1"}
        assert is_location_relevant(notification, template, {"r1"})
        assert not is_location_relevant(notification, template, {"r3"})

    def test_key_distinguishes_scopes(self):
        a = location_dependent({"service": "t"})
        b = location_dependent({"service": "t"}, scope="region")
        assert a.key() != b.key()

    def test_myloc_is_singleton(self):
        from repro.core.location_filter import _MyLocMarker

        assert _MyLocMarker() is MYLOC
