"""Tests for the basic logical-mobility client and the context-awareness extension."""

import pytest

from repro.core.context import ContextAwareClient, ContextMarker, context_dependent
from repro.core.location import office_floor_space
from repro.core.location_filter import location_dependent
from repro.core.logical_mobility import LocationAwareClient
from repro.net.simulator import Simulator
from repro.pubsub.broker_network import line_topology
from repro.pubsub.filters import Equals, Filter


@pytest.fixture
def floor():
    sim = Simulator()
    space = office_floor_space(n_rooms=6, rooms_per_broker=6)
    network = line_topology(sim, 1)
    sensor = network.add_client("sensor", "B1")
    return sim, space, network, sensor


def publish_rooms(sensor, rooms):
    return [
        sensor.publish({"service": "temperature", "location": room, "value": 20}) for room in rooms
    ]


class TestLocationAwareClient:
    def test_subscription_bound_after_location_known(self, floor):
        sim, space, network, sensor = floor
        client = LocationAwareClient(sim, "alice", space)
        network.attach_client(client, "B1")
        template_id = client.subscribe_location(location_dependent({"service": "temperature"}))
        sim.run_until_idle()
        assert client.bound_filters() == []  # no location yet, nothing bound
        client.set_location(space.locations[0])
        sim.run_until_idle()
        assert len(client.bound_filters()) == 1
        assert template_id in client.templates

    def test_only_current_room_delivered(self, floor):
        sim, space, network, sensor = floor
        rooms = space.locations
        client = LocationAwareClient(sim, "alice", space)
        network.attach_client(client, "B1")
        client.set_location(rooms[0])
        client.subscribe_location(location_dependent({"service": "temperature"}))
        sim.run_until_idle()
        publish_rooms(sensor, rooms)
        sim.run_until_idle()
        assert [d.notification["location"] for d in client.deliveries] == [rooms[0]]

    def test_rebinding_follows_movement(self, floor):
        sim, space, network, sensor = floor
        rooms = space.locations
        client = LocationAwareClient(sim, "alice", space)
        network.attach_client(client, "B1")
        client.set_location(rooms[0])
        client.subscribe_location(location_dependent({"service": "temperature"}))
        sim.run_until_idle()
        client.set_location(rooms[2])
        sim.run_until_idle()
        publish_rooms(sensor, rooms)
        sim.run_until_idle()
        assert [d.notification["location"] for d in client.deliveries] == [rooms[2]]
        assert client.rebinds == 2
        assert client.relevant_deliveries() == 1

    def test_setting_same_location_does_not_rebind(self, floor):
        sim, space, network, _sensor = floor
        client = LocationAwareClient(sim, "alice", space)
        network.attach_client(client, "B1")
        client.set_location(space.locations[0])
        client.subscribe_location(location_dependent({"service": "temperature"}))
        rebinds = client.rebinds
        client.set_location(space.locations[0])
        assert client.rebinds == rebinds

    def test_unknown_location_rejected(self, floor):
        sim, space, network, _sensor = floor
        client = LocationAwareClient(sim, "alice", space)
        with pytest.raises(KeyError):
            client.set_location("the-moon")

    def test_unsubscribe_location(self, floor):
        sim, space, network, sensor = floor
        rooms = space.locations
        client = LocationAwareClient(sim, "alice", space)
        network.attach_client(client, "B1")
        client.set_location(rooms[0])
        template_id = client.subscribe_location(location_dependent({"service": "temperature"}))
        sim.run_until_idle()
        client.unsubscribe_location(template_id)
        sim.run_until_idle()
        publish_rooms(sensor, rooms)
        sim.run_until_idle()
        assert client.deliveries == []

    def test_reissue_at_new_broker(self):
        sim = Simulator()
        space = office_floor_space(n_rooms=6, rooms_per_broker=3)
        network = line_topology(sim, 2)
        sensor_far = network.add_client("sensor", "B2")
        client = LocationAwareClient(sim, "alice", space)
        network.attach_client(client, "B1")
        rooms = space.locations
        client.set_location(rooms[0])
        client.subscribe_location(location_dependent({"service": "temperature"}))
        sim.run_until_idle()
        # walk to a room covered by B2 and re-attach reactively
        network.attach_client(client, "B2")
        client.set_location(rooms[4])
        client.reissue_at("B2")
        sim.run_until_idle()
        sensor_far.publish({"service": "temperature", "location": rooms[4], "value": 20})
        sim.run_until_idle()
        assert [d.notification["location"] for d in client.deliveries] == [rooms[4]]
        assert client.reissues == 1


class TestContextDependentFilters:
    def test_bind_with_scalar_and_set_values(self):
        template = context_dependent({"service": "reminder"}, {"priority": "min_priority"})
        bound = template.bind({"min_priority": 3})
        assert bound.matches({"service": "reminder", "priority": 3})
        assert not bound.matches({"service": "reminder", "priority": 2})
        bound_set = template.bind({"min_priority": {2, 3}})
        assert bound_set.matches({"service": "reminder", "priority": 2})

    def test_marker_transform(self):
        marker = ContextMarker("battery", transform=lambda b: {3} if b < 30 else {1, 2, 3})
        template = context_dependent({"service": "reminder"}, {"priority": marker})
        low = template.bind({"battery": 10})
        full = template.bind({"battery": 90})
        assert not low.matches({"service": "reminder", "priority": 1})
        assert full.matches({"service": "reminder", "priority": 1})

    def test_missing_context_raises(self):
        template = context_dependent({"service": "reminder"}, {"priority": "min_priority"})
        with pytest.raises(KeyError):
            template.bind({})

    def test_markers_listing(self):
        template = context_dependent({"s": 1}, {"a": "ctx_a", "b": "ctx_b"})
        assert set(template.markers()) == {"ctx_a", "ctx_b"}


class TestContextAwareClient:
    def _system(self):
        sim = Simulator()
        network = line_topology(sim, 2)
        publisher = network.add_client("publisher", "B1")
        return sim, network, publisher

    def test_rebinds_on_context_change(self):
        sim, network, publisher = self._system()
        client = ContextAwareClient(sim, "device", initial_context={"min_priority": {1, 2, 3}})
        network.attach_client(client, "B2")
        client.subscribe_context(context_dependent({"service": "reminder"}, {"priority": "min_priority"}))
        sim.run_until_idle()
        publisher.publish({"service": "reminder", "priority": 1})
        sim.run_until_idle()
        client.update_context(min_priority={3})
        sim.run_until_idle()
        publisher.publish({"service": "reminder", "priority": 1})
        publisher.publish({"service": "reminder", "priority": 3})
        sim.run_until_idle()
        priorities = [d.notification["priority"] for d in client.deliveries]
        assert priorities == [1, 3]
        assert client.rebinds == 2

    def test_subscription_deferred_until_context_complete(self):
        sim, network, publisher = self._system()
        client = ContextAwareClient(sim, "device")
        network.attach_client(client, "B2")
        client.subscribe_context(context_dependent({"service": "reminder"}, {"priority": "min_priority"}))
        sim.run_until_idle()
        assert client.bound_filters() == []
        client.update_context(min_priority={1, 2, 3})
        sim.run_until_idle()
        assert len(client.bound_filters()) == 1

    def test_irrelevant_context_change_does_not_rebind(self):
        sim, network, _publisher = self._system()
        client = ContextAwareClient(sim, "device", initial_context={"min_priority": {1}})
        network.attach_client(client, "B2")
        client.subscribe_context(context_dependent({"service": "reminder"}, {"priority": "min_priority"}))
        rebinds = client.rebinds
        client.update_context(battery=50)
        assert client.rebinds == rebinds

    def test_unsubscribe_context(self):
        sim, network, publisher = self._system()
        client = ContextAwareClient(sim, "device", initial_context={"min_priority": {1, 2, 3}})
        network.attach_client(client, "B2")
        template_id = client.subscribe_context(
            context_dependent({"service": "reminder"}, {"priority": "min_priority"})
        )
        sim.run_until_idle()
        client.unsubscribe_context(template_id)
        sim.run_until_idle()
        publisher.publish({"service": "reminder", "priority": 1})
        sim.run_until_idle()
        assert client.deliveries == []

    def test_context_at_history(self):
        sim, network, _publisher = self._system()
        client = ContextAwareClient(sim, "device", initial_context={"battery": 100})
        network.attach_client(client, "B2")
        sim.schedule(5.0, lambda: client.update_context(battery=40))
        sim.run_until_idle()
        assert client.context_at(1.0)["battery"] == 100
        assert client.context_at(10.0)["battery"] == 40
