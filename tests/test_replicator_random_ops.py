"""Randomised-operation test of the replicator state machine.

Hypothesis drives a random sequence of client operations — cross-broker
moves, within-broker moves, power-off/pop-up cycles, subscribe/unsubscribe of
location-dependent templates — against a full system, and then checks the
global invariants that must hold for *any* interleaving:

* the client's virtual clients live exactly at ``{current} ∪ nlb(current)``
  once the system quiesces (provided the client is attached);
* exactly one virtual client is active, and it is at the current broker;
* every hosted virtual client carries exactly the client's current template
  set;
* broker routing tables contain no entries for subscriptions the client has
  withdrawn;
* the device never receives duplicate notifications.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.location import office_floor_space
from repro.core.location_filter import location_dependent
from repro.core.middleware import MobilePubSub, MobilitySystemConfig
from repro.net.simulator import Simulator
from repro.pubsub.broker_network import line_topology

N_ROOMS = 12
ROOMS_PER_BROKER = 3

SERVICES = ["temperature", "restaurant-menu", "weather"]

operations = st.lists(
    st.one_of(
        st.tuples(st.just("move"), st.integers(0, N_ROOMS - 1)),
        st.tuples(st.just("popup"), st.integers(0, N_ROOMS - 1)),
        st.tuples(st.just("subscribe"), st.sampled_from(SERVICES)),
        st.tuples(st.just("unsubscribe"), st.integers(0, 3)),
        st.tuples(st.just("publish_round"), st.integers(0, 0)),
    ),
    min_size=1,
    max_size=12,
)


@settings(max_examples=40, deadline=None)
@given(ops=operations)
def test_replicator_invariants_under_random_operations(ops):
    sim = Simulator()
    space = office_floor_space(n_rooms=N_ROOMS, rooms_per_broker=ROOMS_PER_BROKER)
    network = line_topology(sim, len(space.brokers()))
    system = MobilePubSub(sim, network, space, config=MobilitySystemConfig())
    rooms = space.locations

    sensors = {room: system.add_publisher(f"sensor-{room}", room) for room in rooms}
    client = system.add_mobile_client("alice")
    active_templates = {}
    template_id = client.subscribe_location(location_dependent({"service": SERVICES[0]}))
    active_templates[template_id] = SERVICES[0]
    system.attach(client, location=rooms[0])
    sim.run_until_idle()

    for kind, value in ops:
        if kind == "move":
            system.move(client, rooms[value])
        elif kind == "popup":
            system.power_off(client)
            system.power_on(client, rooms[value])
        elif kind == "subscribe":
            new_id = client.subscribe_location(location_dependent({"service": value}))
            active_templates[new_id] = value
        elif kind == "unsubscribe":
            if active_templates:
                victim = sorted(active_templates)[value % len(active_templates)]
                client.unsubscribe_location(victim)
                del active_templates[victim]
        elif kind == "publish_round":
            for room, sensor in sensors.items():
                sensor.publish({"service": SERVICES[0], "location": room, "value": 1})
        sim.run_until_idle()

    sim.run_until_idle()

    # --- invariants -------------------------------------------------------
    current = client.current_broker
    assert client.connected and current is not None

    expected_hosting = {current} | set(system.movement_graph.nlb(current))
    hosting = {
        broker
        for broker, replicator in system.replicators.items()
        if client.name in replicator.virtual_clients
    }
    assert hosting == expected_hosting

    active_at = [
        broker
        for broker in hosting
        if system.replicators[broker].virtual_clients[client.name].is_active
    ]
    assert active_at == [current]

    expected_template_ids = set(client.templates.keys())
    for broker in hosting:
        virtual_client = system.replicators[broker].virtual_clients[client.name]
        assert set(virtual_client.templates.keys()) == expected_template_ids

    # no routing-table entries for withdrawn subscriptions
    live_sub_prefixes = {f"{client.name}:{tid}@" for tid in expected_template_ids}
    for broker in system.network.brokers.values():
        for sub_id in broker.routing_table.subscription_ids():
            if sub_id.startswith(f"{client.name}:") and "plain-" not in sub_id:
                assert any(sub_id.startswith(prefix) for prefix in live_sub_prefixes), sub_id

    assert client.duplicate_deliveries() == 0
