"""Unit tests for the discrete-event simulator."""

import pytest

from repro.net.simulator import PeriodicTask, SimulationError, Simulator, drain


class TestScheduling:
    def test_starts_at_time_zero(self):
        sim = Simulator()
        assert sim.now == 0.0

    def test_custom_start_time(self):
        sim = Simulator(start_time=5.0)
        assert sim.now == 5.0

    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, lambda: order.append("b"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(3.0, lambda: order.append("c"))
        sim.run_until_idle()
        assert order == ["a", "b", "c"]

    def test_same_time_events_run_in_insertion_order(self):
        sim = Simulator()
        order = []
        for label in ("first", "second", "third"):
            sim.schedule(1.0, order.append, label)
        sim.run_until_idle()
        assert order == ["first", "second", "third"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(4.5, lambda: seen.append(sim.now))
        sim.run_until_idle()
        assert seen == [4.5]
        assert sim.now == 4.5

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_at_in_the_past_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run_until_idle()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_call_now_runs_after_pending_same_time_events(self):
        sim = Simulator()
        order = []
        sim.schedule(0.0, order.append, "scheduled")
        sim.call_now(order.append, "called-now")
        sim.run_until_idle()
        assert order == ["scheduled", "called-now"]

    def test_events_scheduled_from_within_events(self):
        sim = Simulator()
        seen = []

        def outer():
            seen.append(("outer", sim.now))
            sim.schedule(1.0, inner)

        def inner():
            seen.append(("inner", sim.now))

        sim.schedule(1.0, outer)
        sim.run_until_idle()
        assert seen == [("outer", 1.0), ("inner", 2.0)]


class TestCancellation:
    def test_cancelled_event_does_not_run(self):
        sim = Simulator()
        ran = []
        handle = sim.schedule(1.0, lambda: ran.append(True))
        handle.cancel()
        sim.run_until_idle()
        assert ran == []

    def test_pending_excludes_cancelled(self):
        sim = Simulator()
        keep = sim.schedule(1.0, lambda: None)
        drop = sim.schedule(2.0, lambda: None)
        drop.cancel()
        assert sim.pending == 1
        assert keep.cancelled is False

    def test_clear_drops_everything(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.clear()
        assert sim.pending == 0
        assert sim.run_until_idle() == 0.0


class TestRunControl:
    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, seen.append, "early")
        sim.schedule(10.0, seen.append, "late")
        sim.run(until=5.0)
        assert seen == ["early"]
        assert sim.now == 5.0
        sim.run_until_idle()
        assert seen == ["early", "late"]

    def test_run_respects_max_events(self):
        sim = Simulator()
        for i in range(10):
            sim.schedule(float(i + 1), lambda: None)
        sim.run(max_events=3)
        assert sim.events_processed == 3
        assert sim.pending == 7

    def test_counters(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run_until_idle()
        assert sim.events_scheduled == 2
        assert sim.events_processed == 2

    def test_drain_helper_advances_in_steps(self):
        sim = Simulator()
        times = []
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t, lambda t=t: times.append(t))
        drain(sim, [1.5, 2.5])
        assert times == [1.0, 2.0]
        assert sim.now == 2.5


class TestPeriodicTask:
    def test_fires_at_fixed_period(self):
        sim = Simulator()
        times = []
        PeriodicTask(sim, period=2.0, callback=lambda: times.append(sim.now), until=10.0)
        sim.run_until_idle()
        assert times == [0.0, 2.0, 4.0, 6.0, 8.0, 10.0]

    def test_start_delay(self):
        sim = Simulator()
        times = []
        PeriodicTask(sim, period=5.0, callback=lambda: times.append(sim.now), start_delay=1.0, until=12.0)
        sim.run_until_idle()
        assert times == [1.0, 6.0, 11.0]

    def test_stop_prevents_further_firing(self):
        sim = Simulator()
        count = []
        task = PeriodicTask(sim, period=1.0, callback=lambda: count.append(1), until=100.0)
        sim.run(until=3.5)
        task.stop()
        sim.run_until_idle()
        assert len(count) == 4  # t = 0, 1, 2, 3

    def test_until_bound_terminates_queue(self):
        sim = Simulator()
        PeriodicTask(sim, period=1.0, callback=lambda: None, until=5.0)
        sim.run_until_idle()
        assert sim.pending == 0

    def test_rejects_non_positive_period(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            PeriodicTask(sim, period=0.0, callback=lambda: None)

    def test_jitter_applied(self):
        sim = Simulator()
        times = []
        PeriodicTask(
            sim, period=2.0, callback=lambda: times.append(sim.now), jitter=lambda: 0.5, until=9.0
        )
        sim.run_until_idle()
        assert times == pytest.approx([0.0, 2.5, 5.0, 7.5])


class TestPendingAccounting:
    """`pending` is maintained as an O(1) counter, not a queue rescan."""

    def test_pending_counts_only_live_events(self):
        sim = Simulator()
        handles = [sim.schedule(float(i + 1), lambda: None) for i in range(10)]
        assert sim.pending == 10
        for handle in handles[:4]:
            handle.cancel()
        assert sim.pending == 6

    def test_double_cancel_counts_once(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert sim.pending == 1

    def test_cancel_after_clear_does_not_corrupt_counter(self):
        sim = Simulator()
        stale = sim.schedule(1.0, lambda: None)
        sim.clear()
        assert sim.pending == 0
        stale.cancel()
        assert sim.pending == 0
        sim.schedule(1.0, lambda: None)
        assert sim.pending == 1

    def test_counter_survives_run(self):
        sim = Simulator()
        keep = [sim.schedule(float(i + 1), lambda: None) for i in range(5)]
        keep[2].cancel()
        sim.run_until_idle()
        assert sim.pending == 0
        assert sim.events_processed == 4

    def test_cancel_after_execution_is_noop(self):
        """Cancelling a handle whose event already ran must not skew `pending`."""
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        sim.run_until_idle()
        handle.cancel()
        assert sim.pending == 0
        sim.schedule(1.0, lambda: None)
        assert sim.pending == 1

    def test_periodic_task_stop_after_until_expiry(self):
        """PeriodicTask.stop() after its `until` bound fired its last event."""
        sim = Simulator()
        task = PeriodicTask(sim, period=1.0, callback=lambda: None, until=2.5)
        sim.run_until_idle()
        task.stop()
        assert sim.pending == 0

    def test_callback_cancelling_own_handle(self):
        sim = Simulator()
        handles = []
        sim.schedule(1.0, lambda: handles[0].cancel())
        handles.append(sim._queue[0][2])
        sim.run_until_idle()
        assert sim.pending == 0
