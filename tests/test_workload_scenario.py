"""Tests for workload generators and scenario composition."""

import pytest

from repro.core.location_filter import location_dependent
from repro.core.middleware import MobilitySystemConfig
from repro.core.replicator import ReplicatorConfig
from repro.mobility.models import RoutePathMobility, StaticMobility
from repro.mobility.scenario import (
    build_grid_scenario,
    build_office_scenario,
    build_route_scenario,
)
from repro.mobility.workload import (
    BurstyLocationPublisher,
    GlobalServicePublisher,
    LocationServicePublishers,
    PoissonLocationPublishers,
    WorkloadRecorder,
    restaurant_workload,
    stock_workload,
    temperature_workload,
    weather_workload,
)


class TestScenarioBuilders:
    def test_office_scenario_dimensions(self):
        scenario = build_office_scenario(n_rooms=9, rooms_per_broker=3)
        assert len(scenario.space) == 9
        assert len(scenario.network.broker_names()) == 3
        assert len(scenario.system.replicators) == 3

    def test_route_scenario_uses_neighbourhood_scope(self):
        scenario = build_route_scenario(n_segments=9, segments_per_broker=3)
        assert scenario.space.myloc_scope == "neighbourhood"

    def test_grid_scenario_brokers_match_cells(self):
        scenario = build_grid_scenario(rows=2, cols=3)
        assert len(scenario.network.broker_names()) == 6
        assert len(scenario.space) == 6

    def test_add_roaming_subscriber_and_evaluate(self):
        scenario = build_office_scenario(n_rooms=6, rooms_per_broker=2)
        publishers, recorder = temperature_workload(
            scenario.system, period=1.0, recorder=scenario.recorder, until=10.0
        )
        template = location_dependent({"service": "temperature"})
        subscriber = scenario.add_roaming_subscriber(
            "alice", template, StaticMobility(scenario.space.locations[0]), duration=10.0
        )
        scenario.run(10.0)
        outcome = scenario.evaluate(subscriber)
        assert outcome.relevant > 0
        assert outcome.missed <= 1  # at most the reading racing the attach
        assert "alice" in scenario.evaluate_all()


class TestWorkloads:
    def test_recorder_filters(self):
        recorder = WorkloadRecorder()
        scenario = build_office_scenario(n_rooms=4, rooms_per_broker=2)
        publishers, recorder = temperature_workload(
            scenario.system, period=1.0, recorder=recorder, until=5.0
        )
        scenario.run(5.0)
        assert len(recorder) > 0
        room = scenario.space.locations[0]
        assert all(n["location"] == room for n in recorder.at_location(room))
        assert all(n["service"] == "temperature" for n in recorder.of_service("temperature"))

    def test_location_publishers_one_per_location(self):
        scenario = build_office_scenario(n_rooms=5, rooms_per_broker=5)
        publishers, _recorder = temperature_workload(
            scenario.system, period=1.0, recorder=scenario.recorder, until=3.0
        )
        assert len(publishers) == 5

    def test_publishers_respect_until_bound(self):
        scenario = build_office_scenario(n_rooms=2, rooms_per_broker=2)
        publishers, recorder = temperature_workload(
            scenario.system, period=1.0, recorder=scenario.recorder, until=5.0
        )
        scenario.sim.run_until_idle()
        assert scenario.sim.now <= 6.0
        assert all(n.published_at <= 5.0 for n in recorder.published)

    def test_stop_halts_publication(self):
        scenario = build_office_scenario(n_rooms=2, rooms_per_broker=2)
        publishers, recorder = temperature_workload(
            scenario.system, period=1.0, recorder=scenario.recorder, until=100.0
        )
        scenario.sim.run(until=3.0)
        count = len(recorder)
        publishers.stop()
        scenario.sim.run_until_idle()
        assert len(recorder) == count

    def test_restaurant_and_weather_payloads(self):
        scenario = build_route_scenario(n_segments=3, segments_per_broker=3)
        menus, recorder = restaurant_workload(scenario.system, period=1.0, until=2.0)
        forecasts, recorder2 = weather_workload(scenario.system, period=1.0, until=2.0)
        scenario.run(2.0)
        assert any("restaurant" in n for n in recorder.published)
        assert any("forecast" in n for n in recorder2.published)

    def test_stock_workload_is_location_free(self):
        scenario = build_office_scenario(n_rooms=2, rooms_per_broker=2)
        publisher, recorder = stock_workload(scenario.system, period=0.5, until=3.0)
        scenario.run(3.0)
        assert len(recorder) >= 5
        assert all("location" not in n for n in recorder.published)
        assert isinstance(publisher, GlobalServicePublisher)

    def test_poisson_publishers_emit(self):
        scenario = build_office_scenario(n_rooms=3, rooms_per_broker=3)
        recorder = WorkloadRecorder()
        PoissonLocationPublishers(
            scenario.system, "news", period=1.0, recorder=recorder, until=10.0
        )
        scenario.run(10.0)
        assert len(recorder) > 0

    def test_bursty_publisher_emits_bursts(self):
        scenario = build_office_scenario(n_rooms=2, rooms_per_broker=2)
        recorder = WorkloadRecorder()
        bursty = BurstyLocationPublisher(
            scenario.system,
            "menu",
            scenario.space.locations[0],
            recorder,
            burst_size=3,
            burst_period=5.0,
            until=11.0,
        )
        scenario.run(12.0)
        assert bursty.bursts_emitted == 3
        assert len(recorder) == 9
