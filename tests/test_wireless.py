"""Unit tests for the wireless channel (connection awareness)."""

import pytest

from repro.net.process import Message, Process
from repro.net.simulator import Simulator
from repro.net.wireless import CoverageMap, WirelessChannel


class Device(Process):
    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.received = []

    def on_message(self, message):
        self.received.append(message)


class AccessPoint(Process):
    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.received = []

    def on_message(self, message):
        self.received.append(message)


@pytest.fixture
def setup():
    sim = Simulator()
    device = Device(sim, "device")
    ap1 = AccessPoint(sim, "ap1")
    ap2 = AccessPoint(sim, "ap2")
    channel = WirelessChannel(sim, device, latency=0.01, connect_latency=0.1)
    return sim, device, ap1, ap2, channel


class TestAttachment:
    def test_initially_disconnected(self, setup):
        _sim, _device, _ap1, _ap2, channel = setup
        assert not channel.connected
        assert channel.access_point_name is None

    def test_attach_completes_after_connect_latency(self, setup):
        sim, _device, ap1, _ap2, channel = setup
        channel.attach(ap1)
        assert not channel.connected  # not yet
        sim.run_until_idle()
        assert channel.connected
        assert channel.access_point_name == "ap1"
        assert sim.now == pytest.approx(0.1)

    def test_immediate_attach(self, setup):
        sim, _device, ap1, _ap2, channel = setup
        channel.attach(ap1, immediate=True)
        sim.run_until_idle()
        assert channel.connected

    def test_connect_callbacks_fire(self, setup):
        sim, _device, ap1, _ap2, channel = setup
        events = []
        channel.on_connect(lambda ap: events.append(("connect", ap)))
        channel.on_disconnect(lambda ap: events.append(("disconnect", ap)))
        channel.attach(ap1)
        sim.run_until_idle()
        channel.detach()
        assert events == [("connect", "ap1"), ("disconnect", "ap1")]

    def test_handover_switches_access_point(self, setup):
        sim, _device, ap1, ap2, channel = setup
        channel.attach(ap1)
        sim.run_until_idle()
        channel.handover(ap2, gap=1.0)
        assert not channel.connected
        sim.run_until_idle()
        assert channel.access_point_name == "ap2"
        assert channel.stats.handovers == 1
        assert channel.stats.connects == 2
        assert channel.stats.disconnects == 1

    def test_detach_cancels_pending_attach(self, setup):
        # a powered-off device must not end up connected because an older
        # attach completed after the detach
        sim, _device, ap1, _ap2, channel = setup
        channel.attach(ap1)
        channel.detach()
        sim.run_until_idle()
        assert not channel.connected
        assert channel.stats.connects == 0

    def test_latest_of_overlapping_attaches_wins(self, setup):
        sim, _device, ap1, ap2, channel = setup
        channel.attach(ap1)
        channel.attach(ap2)
        sim.run_until_idle()
        assert channel.access_point_name == "ap2"
        assert channel.stats.connects == 1

    def test_attachment_history_recorded(self, setup):
        sim, _device, ap1, ap2, channel = setup
        channel.attach(ap1)
        sim.run_until_idle()
        channel.detach()
        channel.attach(ap2)
        sim.run_until_idle()
        kinds = [entry[1] for entry in channel.stats.attachment_history]
        assert kinds == ["attach", "detach", "attach"]


class TestMessaging:
    def test_send_up_when_connected(self, setup):
        sim, _device, ap1, _ap2, channel = setup
        channel.attach(ap1)
        sim.run_until_idle()
        assert channel.send_up(Message("hello")) is True
        sim.run_until_idle()
        assert len(ap1.received) == 1
        assert ap1.received[0].sender == "device"

    def test_send_up_while_disconnected_is_counted(self, setup):
        _sim, _device, _ap1, _ap2, channel = setup
        assert channel.send_up(Message("hello")) is False
        assert channel.stats.dropped_while_disconnected == 1

    def test_downlink_reaches_device(self, setup):
        sim, device, ap1, _ap2, channel = setup
        channel.attach(ap1)
        sim.run_until_idle()
        ap1.send("device", Message("notify", payload=42))
        sim.run_until_idle()
        assert device.received[0].payload == 42

    def test_detach_removes_links(self, setup):
        sim, device, ap1, _ap2, channel = setup
        channel.attach(ap1)
        sim.run_until_idle()
        channel.detach()
        assert not device.has_link("ap1")
        assert not ap1.has_link("device")


class TestBatchedSendOverWireless:
    """Process.send_many / transmit_many across the (lossy) wireless hop."""

    def test_send_many_burst_arrives_in_order_after_latency(self, setup):
        sim, device, ap1, _ap2, channel = setup
        channel.attach(ap1)
        sim.run_until_idle()
        scheduled_before = sim.events_scheduled
        device.send_many("ap1", [Message("subscribe", payload=i) for i in range(5)])
        # the burst is one link event, not five
        assert sim.events_scheduled == scheduled_before + 1
        sim.run_until_idle()
        assert [m.payload for m in ap1.received] == [0, 1, 2, 3, 4]
        assert channel.link_stats().messages == 5

    def test_send_many_on_lossy_channel_drops_whole_burst(self, setup):
        sim, device, ap1, _ap2, channel = setup
        channel.attach(ap1)
        sim.run_until_idle()
        # signal loss without detaching: the link object survives but is down
        channel._link.set_up(False)
        assert not channel.connected
        device.send_many("ap1", [Message("subscribe", payload=i) for i in range(3)])
        sim.run_until_idle()
        assert ap1.received == []
        assert channel.link_stats().dropped == 3

    def test_burst_in_flight_during_signal_loss_still_delivered(self, setup):
        sim, device, ap1, _ap2, channel = setup
        channel.attach(ap1)
        sim.run_until_idle()
        device.send_many("ap1", [Message("subscribe", payload=i) for i in range(3)])
        channel._link.set_up(False)  # loss after transmission, before arrival
        sim.run_until_idle()
        # models buffered TCP segments: in-flight traffic survives the outage
        assert [m.payload for m in ap1.received] == [0, 1, 2]

    def test_burst_after_recovery_preserves_fifo_with_earlier_traffic(self, setup):
        sim, device, ap1, _ap2, channel = setup
        channel.attach(ap1)
        sim.run_until_idle()
        device.send("ap1", Message("first"))
        channel._link.set_up(False)
        device.send("ap1", Message("lost"))
        channel._link.set_up(True)
        device.send_many("ap1", [Message("second"), Message("third")])
        sim.run_until_idle()
        assert [m.kind for m in ap1.received] == ["first", "second", "third"]
        assert channel.link_stats().dropped == 1


class TestCoverageMap:
    def test_lookup(self):
        coverage = CoverageMap()
        coverage.set_cell("cell-1", "B1")
        coverage.set_cell("cell-2", "B1")
        coverage.set_cell("cell-3", "B2")
        assert coverage.access_point_for("cell-1") == "B1"
        assert coverage.access_point_for("unknown") is None
        assert coverage.cells_of("B1") == ["cell-1", "cell-2"]
        assert "cell-3" in coverage
        assert len(coverage) == 3
