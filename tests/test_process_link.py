"""Unit tests for processes, messages and FIFO links."""

import pytest

from repro.net.link import Link, Network
from repro.net.process import Message, Process
from repro.net.simulator import Simulator


class Recorder(Process):
    """A process that records everything it receives."""

    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.received = []

    def on_message(self, message):
        self.received.append((self.sim.now, message))


@pytest.fixture
def pair():
    sim = Simulator()
    a = Recorder(sim, "a")
    b = Recorder(sim, "b")
    link = Link(sim, a, b, latency=0.5)
    return sim, a, b, link


class TestMessage:
    def test_unique_ids(self):
        assert Message("x").msg_id != Message("x").msg_id

    def test_copy_gets_fresh_id_same_payload(self):
        original = Message("publish", payload={"k": 1}, meta={"m": 2})
        duplicate = original.copy()
        assert duplicate.msg_id != original.msg_id
        assert duplicate.payload == original.payload
        assert duplicate.meta == original.meta

    def test_copy_does_not_share_mutable_payload(self):
        # regression: copy() used to copy meta but alias a dict payload, so
        # mutating the forwarded copy corrupted the original in flight
        original = Message("unsubscribe", payload={"sub_id": "s1"}, meta={"m": 2})
        duplicate = original.copy()
        duplicate.payload["sub_id"] = "clobbered"
        duplicate.meta["m"] = 99
        assert original.payload == {"sub_id": "s1"}
        assert original.meta == {"m": 2}

    def test_copy_does_not_share_list_payload(self):
        original = Message("batch", payload=[1, 2, 3])
        duplicate = original.copy()
        duplicate.payload.append(4)
        assert original.payload == [1, 2, 3]

    def test_copy_shares_immutable_domain_payloads(self):
        from repro.pubsub.notification import Notification

        notification = Notification({"v": 1})
        assert Message("notify", payload=notification).copy().payload is notification

    def test_size_grows_with_payload(self):
        small = Message("x", payload="a")
        large = Message("x", payload="a" * 500)
        assert large.size() > small.size()

    def test_size_uses_estimated_size_hook(self):
        class Sized:
            def estimated_size(self):
                return 1234

        assert Message("x", payload=Sized()).size() >= 1234


class TestLinkDelivery:
    def test_message_arrives_after_latency(self, pair):
        sim, a, b, _link = pair
        a.send("b", Message("ping", payload=1))
        sim.run_until_idle()
        assert len(b.received) == 1
        time, message = b.received[0]
        assert time == pytest.approx(0.5)
        assert message.sender == "a"
        assert message.payload == 1

    def test_bidirectional(self, pair):
        sim, a, b, _link = pair
        a.send("b", Message("ping"))
        b.send("a", Message("pong"))
        sim.run_until_idle()
        assert len(a.received) == 1
        assert len(b.received) == 1

    def test_fifo_order_preserved(self, pair):
        sim, a, b, _link = pair
        for i in range(20):
            a.send("b", Message("seq", payload=i))
        sim.run_until_idle()
        payloads = [message.payload for _t, message in b.received]
        assert payloads == list(range(20))

    def test_fifo_preserved_even_if_latency_drops_mid_stream(self, pair):
        sim, a, b, link = pair
        a.send("b", Message("seq", payload=0))
        link.latency = 0.01  # later message would overtake without the FIFO floor
        a.send("b", Message("seq", payload=1))
        sim.run_until_idle()
        payloads = [message.payload for _t, message in b.received]
        assert payloads == [0, 1]

    def test_send_without_link_raises(self, pair):
        sim, a, _b, _link = pair
        with pytest.raises(KeyError):
            a.send("nobody", Message("x"))

    def test_dead_process_ignores_messages(self, pair):
        sim, a, b, _link = pair
        b.shutdown()
        a.send("b", Message("x"))
        sim.run_until_idle()
        assert b.received == []

    def test_counters(self, pair):
        sim, a, b, link = pair
        a.send("b", Message("x"))
        a.send("b", Message("y"))
        sim.run_until_idle()
        assert a.messages_sent == 2
        assert b.messages_received == 2
        assert link.total_messages() == 2
        assert link.stats_a_to_b.messages == 2
        assert link.stats_b_to_a.messages == 0
        assert link.messages_of_kind("x") == 1


class TestLinkFailure:
    def test_down_link_drops_messages(self, pair):
        sim, a, b, link = pair
        link.set_up(False)
        a.send("b", Message("x"))
        sim.run_until_idle()
        assert b.received == []
        assert link.stats_a_to_b.dropped == 1

    def test_disconnect_detaches_endpoints(self, pair):
        sim, a, b, link = pair
        link.disconnect()
        assert not a.has_link("b")
        assert not b.has_link("a")

    def test_in_flight_messages_still_delivered_after_disconnect(self, pair):
        sim, a, b, link = pair
        a.send("b", Message("x"))
        link.disconnect()
        sim.run_until_idle()
        assert len(b.received) == 1

    def test_in_flight_dropped_when_configured(self):
        sim = Simulator()
        a = Recorder(sim, "a")
        b = Recorder(sim, "b")
        link = Link(sim, a, b, latency=0.5, deliver_in_flight_on_down=False)
        a.send("b", Message("x"))
        link.set_up(False)
        sim.run_until_idle()
        assert b.received == []

    def test_reconnect_restores_delivery(self, pair):
        sim, a, b, link = pair
        link.disconnect()
        link.reconnect()
        a.send("b", Message("x"))
        sim.run_until_idle()
        assert len(b.received) == 1

    def test_negative_latency_rejected(self):
        sim = Simulator()
        a = Recorder(sim, "a")
        b = Recorder(sim, "b")
        with pytest.raises(ValueError):
            Link(sim, a, b, latency=-1.0)


class TestNetwork:
    def test_duplicate_process_names_rejected(self):
        sim = Simulator()
        network = Network(sim)
        network.add_process(Recorder(sim, "a"))
        with pytest.raises(ValueError):
            network.add_process(Recorder(sim, "a"))

    def test_connect_and_lookup(self):
        sim = Simulator()
        network = Network(sim)
        a = network.add_process(Recorder(sim, "a"))
        b = network.add_process(Recorder(sim, "b"))
        network.connect("a", "b", latency=0.1)
        assert network.link_between("a", "b") is not None
        assert network.link_between("b", "a") is not None
        assert network.link_between("a", "c") is None
        a.send("b", Message("hello"))
        sim.run_until_idle()
        assert network.total_messages() == 1
        assert network.total_messages("hello") == 1
        assert network.total_bytes() > 0


class TestBatchedDelivery:
    def test_send_many_is_one_event_per_link(self, pair):
        sim, a, b, link = pair
        messages = [Message("subscribe", payload=i) for i in range(5)]
        scheduled_before = sim.events_scheduled
        a.send_many("b", messages)
        assert sim.events_scheduled == scheduled_before + 1
        sim.run_until_idle()
        assert [m.payload for (_, m) in b.received] == [0, 1, 2, 3, 4]
        assert all(t == pytest.approx(0.5) for (t, _) in b.received)
        assert a.messages_sent == 5
        assert link.stats_a_to_b.messages == 5

    def test_send_many_preserves_fifo_with_earlier_traffic(self, pair):
        sim, a, b, link = pair
        a.send("b", Message("x", payload="first"))
        a.send_many("b", [Message("y", payload="second"), Message("y", payload="third")])
        sim.run_until_idle()
        assert [m.payload for (_, m) in b.received] == ["first", "second", "third"]

    def test_send_many_on_down_link_drops_all(self, pair):
        sim, a, b, link = pair
        link.set_up(False)
        a.send_many("b", [Message("x"), Message("x")])
        sim.run_until_idle()
        assert b.received == []
        assert link.stats_a_to_b.dropped == 2

    def test_send_many_empty_is_noop(self, pair):
        sim, a, b, _ = pair
        a.send_many("b", [])
        assert sim.events_scheduled == 0
        assert a.messages_sent == 0
