"""The interval matcher: incremental range index, destination cache, flips.

The ``"interval"`` matcher swaps the lazily rebuilt segment index for the
incrementally repaired :class:`~repro.pubsub.matching.IntervalBucketIndex`
and adds an epoch-guarded destination cache to the routing table.  Its
contract is the same as ``"indexed"``: forwarding decisions byte-identical
to brute force under any churn, at the index level, the table level and
end-to-end through a broker network — plus the cache must never serve a
stale entry across a mutation or a live matcher flip.
"""

from __future__ import annotations

import math
import os
import random
import subprocess
import sys
from pathlib import Path

import pytest

from repro.net.simulator import Simulator
from repro.pubsub.broker_network import random_tree_topology
from repro.pubsub.filters import Equals, Filter, Range
from repro.pubsub.matching import (
    IntervalBucketIndex,
    RangeSegmentIndex,
    make_range_index,
)
from repro.pubsub.notification import Notification
from repro.pubsub.routing_table import RoutingTable

from test_routing_index import assert_tables_agree, random_filter, random_notification


def linear_candidates(live, value):
    """The oracle: payloads of every live range whose [low, high] brackets value."""
    return sorted(p for p, (low, high) in live.items() if low <= value <= high)


class TestIntervalBucketIndex:
    def test_basic_stabbing(self):
        """Candidates are a superset of the true hits and discard is exact."""
        index = IntervalBucketIndex()
        index.add("a", Range("x", 0, 10), "a")
        index.add("b", Range("x", 5, 20), "b")
        index.add("c", Range("x", 15, 30), "c")
        assert {"a", "b"} <= set(index.candidates(7))
        assert {"b", "c"} <= set(index.candidates(17))
        index.discard("b")
        assert "b" not in index.candidates(7)
        assert "a" in index.candidates(7)
        assert len(index) == 2

    def test_exact_after_splits(self):
        """Once churn has grown the cut list, buckets localize candidates."""
        index = IntervalBucketIndex()
        for i in range(300):
            index.add(f"n{i}", Range("x", 3 * i, 3 * i + 2), f"n{i}")
        assert index.repairs > 0
        # candidate sets are localized: a probe yields far fewer than n entries
        assert len(index.candidates(451)) <= 2 * IntervalBucketIndex.MAX_BUCKET
        assert "n150" in index.candidates(451)
        assert "n150" not in index.candidates(470)

    def test_infinite_bounds(self):
        index = IntervalBucketIndex()
        index.add("lo", Range("x", high=5), "lo")  # (-inf, 5]
        index.add("hi", Range("x", low=5), "hi")  # [5, inf)
        index.add("all", Range("x"), "all")  # (-inf, inf)
        assert {"all", "lo"} <= set(index.candidates(-1e18))
        assert {"all", "hi"} <= set(index.candidates(1e18))
        assert {"all", "hi", "lo"} <= set(index.candidates(5))
        assert {"all", "hi"} <= set(index.candidates(math.inf))
        assert {"all", "lo"} <= set(index.candidates(-math.inf))

    def test_nan_query_matches_nothing(self):
        for index in (IntervalBucketIndex(), RangeSegmentIndex()):
            index.add("a", Range("x", 0, 10), "a")
            assert index.candidates(math.nan) == []

    def test_nan_bounds_rejected_at_construction(self):
        with pytest.raises(ValueError, match="NaN"):
            Range("x", math.nan, 5)
        with pytest.raises(ValueError, match="NaN"):
            Range("x", 0, math.nan)

    def test_non_numeric_queries(self):
        index = IntervalBucketIndex()
        index.add("a", Range("x", 0, 10), "a")
        assert index.candidates("5") == []
        assert index.candidates(None) == []
        assert index.candidates(True) == []  # bool is not a numeric match

    def test_duplicate_boundaries(self):
        """Many ranges sharing boundary points: still exact, each yielded once."""
        index = IntervalBucketIndex()
        for i in range(100):
            index.add(f"p{i}", Range("x", 5, 5), f"p{i}")  # identical points
        for i in range(20):
            index.add(f"r{i}", Range("x", 5, 10), f"r{i}")
        got = index.candidates(5)
        assert len(got) == len(set(got)) == 120
        assert sorted(index.candidates(7)) == sorted(f"r{i}" for i in range(20))

    def test_unsplittable_bucket_backs_off(self):
        """All-identical point intervals cannot be separated: no repair loop."""
        index = IntervalBucketIndex()
        for i in range(8 * IntervalBucketIndex.MAX_BUCKET):
            index.add(f"p{i}", Range("x", 1, 1), f"p{i}")
        # at most one degenerate split (at the shared point); every later
        # attempt finds no interior bound, refuses and backs off
        assert index.repairs <= 1
        assert len(index.candidates(1)) == 8 * IntervalBucketIndex.MAX_BUCKET
        assert index.candidates(2) == []

    def test_wide_entries_fall_back_to_scan(self):
        """Entries spanning > MAX_SPAN buckets join the always-scanned wide set."""
        index = IntervalBucketIndex()
        # enough disjoint narrow ranges to force splits and grow the cut list
        for i in range(200):
            index.add(f"n{i}", Range("x", 3 * i, 3 * i + 2), f"n{i}")
        assert index.repairs > 0
        assert len(index._cuts) > IntervalBucketIndex.MAX_SPAN
        index.add("wide", Range("x", 0, 600), "wide")
        assert "wide" in index._wide
        for probe in (1, 299, 599):
            assert "wide" in index.candidates(probe)
        index.discard("wide")
        assert "wide" not in index.candidates(299)

    def test_repair_counter_wired(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        index = make_range_index("interval", repair_counter=registry.counter("index.repair"))
        for i in range(200):
            index.add(f"n{i}", Range("x", 3 * i, 3 * i + 2), f"n{i}")
        assert index.repairs > 0
        assert registry.counter("index.repair").value == index.repairs

    def test_compaction_reset_when_drained(self):
        index = IntervalBucketIndex()
        for i in range(200):
            index.add(f"n{i}", Range("x", 3 * i, 3 * i + 2), f"n{i}")
        assert len(index._cuts) > 0
        for i in range(200):
            index.discard(f"n{i}")
        assert len(index) == 0
        assert index._cuts == [] and index._buckets == [{}]

    @pytest.mark.parametrize("seed", range(3))
    def test_randomized_churn_vs_linear_oracle(self, seed):
        rng = random.Random(seed)
        index = IntervalBucketIndex()
        live = {}
        for step in range(2500):
            op = rng.random()
            if op < 0.55 or not live:
                entry_id = f"e{step}"
                low = rng.uniform(-100, 100)
                width = 0.0 if rng.random() < 0.15 else rng.uniform(0, 60)
                index.add(entry_id, Range("x", low, low + width), entry_id)
                live[entry_id] = (low, low + width)
            elif op < 0.8:
                entry_id = rng.choice(list(live))
                index.discard(entry_id)
                del live[entry_id]
            else:
                value = rng.uniform(-120, 120)
                got = sorted(index.candidates(value))
                assert len(got) == len(set(got))  # no duplicate yields
                # candidates is a superset; it must contain every true hit
                assert set(linear_candidates(live, value)) <= set(got)

    def test_half_open_ranges_exact_through_table(self):
        """Inclusivity is the filter's job; the table restores exactness."""
        for matcher in ("brute", "indexed", "interval"):
            table = RoutingTable(matcher=matcher)
            table.add(Filter([Range("x", 0, 10, include_low=False)]), "L1", "s1")
            table.add(Filter([Range("x", 0, 10, include_high=False)]), "L2", "s2")
            table.add(
                Filter([Range("x", 0, 10, include_low=False, include_high=False)]), "L3", "s3"
            )
            assert table.destinations({"x": 0}) == ["L2"], matcher
            assert table.destinations({"x": 10}) == ["L1"], matcher
            assert table.destinations({"x": 5}) == ["L1", "L2", "L3"], matcher


class TestIntervalTableEquivalence:
    @pytest.mark.parametrize("seed", range(5))
    def test_randomized_churn(self, seed):
        """The brute-vs-interval twin of the indexed churn equivalence test."""
        rng = random.Random(seed)
        brute = RoutingTable(matcher="brute")
        interval = RoutingTable(matcher="interval")
        live_subs = []
        for step in range(300):
            op = rng.random()
            if op < 0.6 or not live_subs:
                sub_id = f"s{step}" if op < 0.5 or not live_subs else rng.choice(live_subs)
                link = f"L{rng.randint(1, 6)}"
                f = random_filter(rng)
                brute.add(f, link, sub_id)
                interval.add(f, link, sub_id)
                if sub_id not in live_subs:
                    live_subs.append(sub_id)
            elif op < 0.85:
                sub_id = rng.choice(live_subs)
                link = f"L{rng.randint(1, 6)}" if rng.random() < 0.5 else None
                brute.remove(sub_id, link=link)
                interval.remove(sub_id, link=link)
                if not brute.has_subscription(sub_id):
                    live_subs.remove(sub_id)
            else:
                link = f"L{rng.randint(1, 6)}"
                removed_b = {(e.sub_id, e.link) for e in brute.remove_link(link)}
                removed_i = {(e.sub_id, e.link) for e in interval.remove_link(link)}
                assert removed_b == removed_i
                live_subs = [s for s in live_subs if brute.has_subscription(s)]
            if step % 25 == 0:
                assert len(brute) == len(interval)
                assert_tables_agree(brute, interval, rng, rounds=5)
        assert_tables_agree(brute, interval, rng, rounds=40)

    def test_range_heavy_churn(self):
        """Pure-Range filters (the regime the interval index is built for)."""
        rng = random.Random(11)
        brute = RoutingTable(matcher="brute")
        interval = RoutingTable(matcher="interval")
        live = []
        for step in range(600):
            if rng.random() < 0.6 or not live:
                sub_id = f"s{step}"
                low = rng.uniform(0, 1000)
                f = Filter([Range("value", low, low + rng.uniform(0, 80))])
                link = f"L{rng.randint(1, 8)}"
                brute.add(f, link, sub_id)
                interval.add(f, link, sub_id)
                live.append(sub_id)
            else:
                sub_id = live.pop(rng.randrange(len(live)))
                brute.remove(sub_id)
                interval.remove(sub_id)
            if step % 50 == 0:
                for _ in range(10):
                    probe = {"value": rng.uniform(-50, 1100)}
                    assert brute.destinations(probe) == interval.destinations(probe)

    def test_set_matcher_flips_through_interval(self):
        rng = random.Random(7)
        table = RoutingTable(matcher="brute")
        reference = RoutingTable(matcher="brute")
        for i in range(120):
            f = random_filter(rng)
            link = f"L{i % 5}"
            table.add(f, link, f"s{i}")
            reference.add(f, link, f"s{i}")
        for flip in ("interval", "indexed", "interval", "brute", "interval"):
            table.set_matcher(flip)
            assert table.matcher == flip
            assert_tables_agree(reference, table, rng, rounds=15)


class TestDestinationCache:
    def probe(self):
        return {"service": "stock", "value": 7}

    def build(self, matcher):
        table = RoutingTable(matcher=matcher)
        table.add(Filter([Equals("service", "stock"), Range("value", 0, 10)]), "L1", "s1")
        table.add(Filter([Range("value", 5, 20)]), "L2", "s2")
        return table

    @pytest.mark.parametrize("matcher", ["indexed", "interval"])
    def test_repeat_publish_hits_cache(self, matcher):
        table = self.build(matcher)
        assert table.destinations(self.probe()) == ["L1", "L2"]
        assert table.cache_hits == 0
        for _ in range(5):
            assert table.destinations(self.probe()) == ["L1", "L2"]
        assert table.cache_hits == 5

    @pytest.mark.parametrize("matcher", ["indexed", "interval"])
    def test_every_mutation_invalidates(self, matcher):
        table = self.build(matcher)
        probe = self.probe()
        table.destinations(probe)

        table.add(Filter([Range("value", 6, 8)]), "L3", "s3")
        assert table.destinations(probe) == ["L1", "L2", "L3"]
        table.remove("s3")
        assert table.destinations(probe) == ["L1", "L2"]
        table.remove_link("L2")
        assert table.destinations(probe) == ["L1"]
        table.clear()
        assert table.destinations(probe) == []
        # only the identical re-queries above could have hit; mutations never serve stale
        table.add(Filter([Equals("service", "stock")]), "L9", "s9")
        assert table.destinations(probe) == ["L9"]

    def test_matcher_flip_invalidates(self):
        table = self.build("indexed")
        probe = self.probe()
        assert table.destinations(probe) == ["L1", "L2"]
        table.destinations(probe)
        hits = table.cache_hits
        table.set_matcher("interval")
        assert table.destinations(probe) == ["L1", "L2"]
        assert table.cache_hits == hits  # first post-flip query recomputed

    def test_exclusions_are_part_of_the_key(self):
        table = self.build("interval")
        probe = self.probe()
        assert table.destinations(probe) == ["L1", "L2"]
        assert table.destinations(probe, exclude=("L1",)) == ["L2"]
        assert table.destinations(probe, exclude=("L2",)) == ["L1"]
        assert table.cache_hits == 0

    def test_cached_lists_are_isolated_copies(self):
        table = self.build("interval")
        probe = self.probe()
        first = table.destinations(probe)
        first.append("junk")
        assert table.destinations(probe) == ["L1", "L2"]

    def test_unhashable_attribute_values_skip_the_cache(self):
        table = self.build("interval")
        table.add(Filter([Equals("tags", ["a"])]), "L4", "s4")
        probe = {"service": "stock", "value": 7, "tags": ["a"]}
        assert table.destinations(probe) == ["L1", "L2", "L4"]
        assert table.destinations(probe) == ["L1", "L2", "L4"]
        assert table.cache_hits == 0

    def test_capacity_bounded_fifo(self):
        table = RoutingTable(matcher="interval")
        table.CACHE_CAPACITY = 8
        table.add(Filter([Range("value", 0, 1000)]), "L1", "s1")
        for i in range(50):
            table.destinations({"value": i})
        assert len(table._destination_cache) <= 8

    def test_cache_hit_counter_wired(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        table = RoutingTable(matcher="interval", metrics=registry)
        table.add(Filter([Range("value", 0, 10)]), "L1", "s1")
        table.destinations({"value": 5})
        table.destinations({"value": 5})
        assert registry.counter("match.cache_hit").value == 1

    def test_brute_matcher_stays_uncached(self):
        table = self.build("brute")
        probe = self.probe()
        table.destinations(probe)
        table.destinations(probe)
        assert table.cache_hits == 0


class TestNaNRegression:
    def test_nan_notification_matches_no_range_on_any_matcher(self):
        """NaN used to satisfy brute Ranges but not the indexed path; now neither."""
        for matcher in ("brute", "indexed", "interval"):
            table = RoutingTable(matcher=matcher)
            table.add(Filter([Range("value", 0, 10)]), "L1", "s1")
            assert table.destinations({"value": math.nan}) == [], matcher

    def test_nan_equals_still_matches_by_identity_semantics(self):
        # Equals uses ==, and nan != nan: NaN never matches there either,
        # so every constraint family agrees that NaN routes nowhere
        for matcher in ("brute", "indexed", "interval"):
            table = RoutingTable(matcher=matcher)
            table.add(Filter([Equals("value", math.nan)]), "L1", "s1")
            assert table.destinations({"value": math.nan}) == [], matcher


def _deliveries(matcher: str, seed: int):
    """End-to-end: randomized pub/sub workload through a broker tree."""
    rng = random.Random(seed)
    sim = Simulator()
    network = random_tree_topology(sim, 6, seed=seed, matcher=matcher)
    brokers = network.broker_names()
    subscribers = []
    for i in range(12):
        client = network.add_client(f"sub-{i}", rng.choice(brokers))
        client.subscribe(random_filter(rng))
        subscribers.append(client)
    sim.run_until_idle()
    publisher = network.add_client("pub", rng.choice(brokers))
    for i in range(40):
        publisher.publish(Notification(dict(random_notification(rng)), notification_id=1000 + i))
    sim.run_until_idle()
    return {
        client.name: sorted(d.notification.notification_id for d in client.deliveries)
        for client in subscribers
    }


class TestEndToEndEquivalence:
    @pytest.mark.parametrize("seed", range(4))
    def test_identical_delivery_sets(self, seed):
        assert _deliveries("brute", seed) == _deliveries("interval", seed)


_HASHSEED_SCRIPT = """
import random
import sys

from repro.pubsub.routing_table import RoutingTable

sys.path.insert(0, {tests_dir!r})
from test_routing_index import assert_tables_agree, random_filter

rng = random.Random(5150)
brute = RoutingTable(matcher="brute")
interval = RoutingTable(matcher="interval")
live = []
for step in range(400):
    if rng.random() < 0.6 or not live:
        sub_id = f"s{{step}}"
        f = random_filter(rng)
        link = f"L{{rng.randint(1, 6)}}"
        brute.add(f, link, sub_id)
        interval.add(f, link, sub_id)
        live.append(sub_id)
    else:
        sub_id = live.pop(rng.randrange(len(live)))
        brute.remove(sub_id)
        interval.remove(sub_id)
assert_tables_agree(brute, interval, rng, rounds=60)
print("OK")
"""


@pytest.mark.parametrize("hashseed", ["0", "1"])
def test_equivalence_under_pythonhashseed(hashseed):
    """Dict/set iteration order must not leak into forwarding decisions."""
    repo_root = Path(__file__).resolve().parent.parent
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    env["PYTHONPATH"] = str(repo_root / "src")
    script = _HASHSEED_SCRIPT.format(tests_dir=str(repo_root / "tests"))
    result = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        env=env,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip() == "OK"
