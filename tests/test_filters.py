"""Unit tests for content-based filters: matching, covering, overlap, merging."""

import pytest

from repro.pubsub.filters import (
    AtLeast,
    AtMost,
    Equals,
    Exists,
    Filter,
    GreaterThan,
    InSet,
    LessThan,
    NotEquals,
    Prefix,
    Range,
    conjunction,
    filter_from_dict,
    match_all,
)
from repro.pubsub.notification import notification


class TestConstraintMatching:
    def test_equals(self):
        constraint = Equals("service", "temperature")
        assert constraint.matches({"service": "temperature"})
        assert not constraint.matches({"service": "stock"})
        assert not constraint.matches({"other": "temperature"})

    def test_not_equals(self):
        constraint = NotEquals("service", "stock")
        assert constraint.matches({"service": "temperature"})
        assert not constraint.matches({"service": "stock"})

    def test_exists(self):
        constraint = Exists("location")
        assert constraint.matches({"location": "anywhere"})
        assert not constraint.matches({"service": "x"})

    def test_in_set(self):
        constraint = InSet("location", {"room-1", "room-2"})
        assert constraint.matches({"location": "room-1"})
        assert not constraint.matches({"location": "room-3"})

    def test_range_inclusive_bounds(self):
        constraint = Range("value", low=10, high=20)
        assert constraint.matches({"value": 10})
        assert constraint.matches({"value": 20})
        assert not constraint.matches({"value": 21})
        assert not constraint.matches({"value": 9.999})

    def test_range_exclusive_bounds(self):
        constraint = Range("value", low=10, high=20, include_low=False, include_high=False)
        assert not constraint.matches({"value": 10})
        assert not constraint.matches({"value": 20})
        assert constraint.matches({"value": 15})

    def test_range_rejects_non_numeric(self):
        constraint = Range("value", low=0, high=10)
        assert not constraint.matches({"value": "five"})
        assert not constraint.matches({"value": True})

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            Range("value", low=10, high=5)

    def test_comparison_helpers(self):
        assert LessThan("v", 5).matches({"v": 4})
        assert not LessThan("v", 5).matches({"v": 5})
        assert AtMost("v", 5).matches({"v": 5})
        assert GreaterThan("v", 5).matches({"v": 6})
        assert not GreaterThan("v", 5).matches({"v": 5})
        assert AtLeast("v", 5).matches({"v": 5})

    def test_prefix(self):
        constraint = Prefix("topic", "news/")
        assert constraint.matches({"topic": "news/sport"})
        assert not constraint.matches({"topic": "weather/today"})
        assert not constraint.matches({"topic": 42})


class TestConstraintCovering:
    def test_equals_covers_itself_only(self):
        a = Equals("x", 1)
        assert a.covers(Equals("x", 1))
        assert not a.covers(Equals("x", 2))
        assert not a.covers(Equals("y", 1))

    def test_exists_covers_any_constraint_on_attribute(self):
        assert Exists("x").covers(Equals("x", 5))
        assert Exists("x").covers(Range("x", 0, 10))
        assert not Exists("x").covers(Equals("y", 5))

    def test_inset_covering(self):
        big = InSet("loc", {"a", "b", "c"})
        small = InSet("loc", {"a", "b"})
        assert big.covers(small)
        assert not small.covers(big)
        assert big.covers(Equals("loc", "a"))
        assert not big.covers(Equals("loc", "z"))

    def test_range_covering(self):
        wide = Range("v", 0, 100)
        narrow = Range("v", 10, 20)
        assert wide.covers(narrow)
        assert not narrow.covers(wide)
        assert wide.covers(Equals("v", 50))
        assert wide.covers(InSet("v", {1, 2, 3}))
        assert not wide.covers(InSet("v", {1, 200}))

    def test_range_covering_boundary_inclusion(self):
        closed = Range("v", 0, 10)
        open_high = Range("v", 0, 10, include_high=False)
        assert closed.covers(open_high)
        assert not open_high.covers(closed)

    def test_prefix_covering(self):
        assert Prefix("t", "news").covers(Prefix("t", "news/sport"))
        assert not Prefix("t", "news/sport").covers(Prefix("t", "news"))
        assert Prefix("t", "news").covers(Equals("t", "news/sport"))

    def test_not_equals_covering(self):
        ne = NotEquals("x", 3)
        assert ne.covers(Equals("x", 4))
        assert not ne.covers(Equals("x", 3))
        assert ne.covers(InSet("x", {1, 2}))
        assert not ne.covers(InSet("x", {2, 3}))


class TestConstraintOverlap:
    def test_disjoint_equals(self):
        assert not Equals("x", 1).overlaps(Equals("x", 2))
        assert Equals("x", 1).overlaps(Equals("x", 1))

    def test_disjoint_ranges(self):
        assert not Range("v", 0, 5).overlaps(Range("v", 6, 10))
        assert Range("v", 0, 5).overlaps(Range("v", 5, 10))
        assert not Range("v", 0, 5, include_high=False).overlaps(Range("v", 5, 10))

    def test_different_attributes_always_overlap(self):
        assert Equals("x", 1).overlaps(Equals("y", 2))

    def test_inset_overlap(self):
        assert InSet("loc", {"a", "b"}).overlaps(InSet("loc", {"b", "c"}))
        assert not InSet("loc", {"a"}).overlaps(InSet("loc", {"c"}))


class TestFilter:
    def test_empty_filter_matches_everything(self):
        assert match_all().matches({"anything": 1})
        assert match_all().matches({})
        assert match_all().is_empty()

    def test_conjunction_semantics(self):
        f = conjunction(Equals("service", "temperature"), Range("value", 0, 30))
        assert f.matches({"service": "temperature", "value": 20})
        assert not f.matches({"service": "temperature", "value": 40})
        assert not f.matches({"service": "stock", "value": 20})
        assert not f.matches({"value": 20})

    def test_callable(self):
        f = conjunction(Equals("a", 1))
        assert f({"a": 1})

    def test_attributes_listing(self):
        f = conjunction(Equals("a", 1), Range("b", 0, 5), Equals("a", 1))
        assert f.attributes == ["a", "b"]
        assert len(f.constraints_on("a")) == 2

    def test_filter_from_dict(self):
        f = filter_from_dict({"service": "temperature", "location": {"r1", "r2"}, "value": ("range", (0, 30))})
        assert f.matches({"service": "temperature", "location": "r1", "value": 10})
        assert not f.matches({"service": "temperature", "location": "r3", "value": 10})
        assert not f.matches({"service": "temperature", "location": "r1", "value": 99})

    def test_equality_ignores_constraint_order(self):
        f1 = conjunction(Equals("a", 1), Equals("b", 2))
        f2 = conjunction(Equals("b", 2), Equals("a", 1))
        assert f1 == f2
        assert hash(f1) == hash(f2)

    def test_matches_notification_object(self):
        f = filter_from_dict({"service": "temperature"})
        assert f.matches(notification(service="temperature", value=3))


class TestFilterCovering:
    def test_empty_filter_covers_everything(self):
        assert match_all().covers(filter_from_dict({"a": 1}))

    def test_fewer_constraints_cover_more(self):
        broad = filter_from_dict({"service": "temperature"})
        narrow = filter_from_dict({"service": "temperature", "location": "r1"})
        assert broad.covers(narrow)
        assert not narrow.covers(broad)

    def test_covering_is_reflexive(self):
        f = filter_from_dict({"service": "temperature", "location": {"a", "b"}})
        assert f.covers(f)

    def test_covering_with_ranges(self):
        broad = conjunction(Equals("s", "t"), Range("v", 0, 100))
        narrow = conjunction(Equals("s", "t"), Range("v", 10, 20))
        assert broad.covers(narrow)
        assert not narrow.covers(broad)

    def test_covering_soundness_spot_check(self):
        broad = conjunction(Equals("s", "t"), InSet("loc", {"a", "b", "c"}))
        narrow = conjunction(Equals("s", "t"), InSet("loc", {"a"}))
        assert broad.covers(narrow)
        sample = {"s": "t", "loc": "a"}
        assert narrow.matches(sample) and broad.matches(sample)

    def test_overlap_detects_disjoint(self):
        f1 = filter_from_dict({"service": "temperature"})
        f2 = filter_from_dict({"service": "stock"})
        assert not f1.overlaps(f2)
        assert f1.overlaps(filter_from_dict({"service": "temperature", "value": 3}))


class TestFilterMerge:
    def test_merge_keeps_shared_constraints(self):
        f1 = conjunction(Equals("s", "t"), Equals("loc", "a"))
        f2 = conjunction(Equals("s", "t"), Equals("loc", "b"))
        merged = f1.merge(f2)
        assert merged.covers(f1)
        assert merged.covers(f2)
        assert merged.matches({"s": "t", "loc": "anything"})

    def test_merge_of_identical_filters_is_identity(self):
        f = filter_from_dict({"s": "t", "loc": "a"})
        assert f.merge(f) == f

    def test_conjoin(self):
        f1 = filter_from_dict({"s": "t"})
        f2 = filter_from_dict({"loc": "a"})
        combined = f1.conjoin(f2)
        assert combined.matches({"s": "t", "loc": "a"})
        assert not combined.matches({"s": "t", "loc": "b"})

    def test_estimated_size_positive(self):
        assert filter_from_dict({"s": "t"}).estimated_size() > 0
