"""Unit tests for movement predictors (shadow-placement policies)."""

import pytest

from repro.core.movement_graph import complete_graph, grid_graph, line_graph
from repro.core.uncertainty import (
    FloodingPredictor,
    MarkovPredictor,
    NeighbourhoodPredictor,
    NoPredictionPredictor,
    RecencyPredictor,
    coverage_and_cost,
)


@pytest.fixture
def line():
    return line_graph(["A", "B", "C", "D", "E"])


class TestNeighbourhoodPredictor:
    def test_one_hop_is_nlb(self, line):
        predictor = NeighbourhoodPredictor(line)
        assert predictor.predict("B") == frozenset({"A", "C"})

    def test_k_hop(self, line):
        predictor = NeighbourhoodPredictor(line, hops=2)
        assert predictor.predict("A") == frozenset({"B", "C"})

    def test_invalid_hops(self, line):
        with pytest.raises(ValueError):
            NeighbourhoodPredictor(line, hops=0)


class TestTrivialPredictors:
    def test_none_predicts_nothing(self):
        assert NoPredictionPredictor().predict("anywhere") == frozenset()

    def test_flooding_predicts_everyone_else(self):
        predictor = FloodingPredictor(["A", "B", "C"])
        assert predictor.predict("A") == frozenset({"B", "C"})


class TestMarkovPredictor:
    def test_falls_back_to_nlb_without_observations(self, line):
        predictor = MarkovPredictor(line, min_observations=3)
        assert predictor.predict("B") == line.nlb("B")

    def test_learns_dominant_transition(self, line):
        predictor = MarkovPredictor(line, threshold=0.5, min_observations=3)
        for _ in range(9):
            predictor.observe_handover("B", "C")
        predictor.observe_handover("B", "A")
        assert predictor.predict("B") == frozenset({"C"})
        assert predictor.transition_probability("B", "C") == pytest.approx(0.9)

    def test_threshold_keeps_multiple_candidates(self, line):
        predictor = MarkovPredictor(line, threshold=0.2, min_observations=2)
        for _ in range(5):
            predictor.observe_handover("B", "C")
        for _ in range(5):
            predictor.observe_handover("B", "A")
        assert predictor.predict("B") == frozenset({"A", "C"})

    def test_never_predicts_empty_when_graph_known(self, line):
        predictor = MarkovPredictor(line, threshold=0.99, min_observations=1)
        predictor.observe_handover("B", "C")
        predictor.observe_handover("B", "A")
        # No single transition reaches 0.99, but the predictor degrades to nlb.
        assert predictor.predict("B") == line.nlb("B")

    def test_max_candidates_cap(self, line):
        predictor = MarkovPredictor(line, threshold=0.1, min_observations=1, max_candidates=1)
        for _ in range(6):
            predictor.observe_handover("B", "C")
        for _ in range(4):
            predictor.observe_handover("B", "A")
        assert predictor.predict("B") == frozenset({"C"})

    def test_self_transition_ignored(self, line):
        predictor = MarkovPredictor(line)
        predictor.observe_handover("B", "B")
        assert predictor.transition_probability("B", "B") == 0.0

    def test_invalid_threshold(self, line):
        with pytest.raises(ValueError):
            MarkovPredictor(line, threshold=1.5)


class TestRecencyPredictor:
    def test_remembers_recent_brokers(self):
        predictor = RecencyPredictor(window=2)
        predictor.observe_handover("home", "office")
        predictor.observe_handover("office", "gym")
        predicted = predictor.predict("gym")
        assert "office" in predicted
        assert "gym" not in predicted

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            RecencyPredictor(window=0)


class TestCoverageAndCost:
    def test_perfect_coverage_on_respecting_trace(self, line):
        trace = ["A", "B", "C", "D", "E", "D", "C"]
        coverage, shadows = coverage_and_cost(NeighbourhoodPredictor(line), trace)
        assert coverage == 1.0
        assert 1.0 <= shadows <= 2.0

    def test_zero_coverage_with_no_prediction(self, line):
        coverage, shadows = coverage_and_cost(NoPredictionPredictor(), ["A", "B", "C"])
        assert coverage == 0.0
        assert shadows == 0.0

    def test_flooding_always_covers(self, line):
        predictor = FloodingPredictor(line.brokers)
        coverage, shadows = coverage_and_cost(predictor, ["A", "E", "B", "D"])
        assert coverage == 1.0
        assert shadows == pytest.approx(4.0)

    def test_empty_trace(self, line):
        coverage, shadows = coverage_and_cost(NeighbourhoodPredictor(line), ["A", "A"])
        assert coverage == 1.0
        assert shadows == 0.0

    def test_markov_learns_during_replay(self):
        graph = grid_graph(3, 3)
        trace = ["B_0_0", "B_0_1", "B_0_0", "B_0_1", "B_0_0", "B_0_1"] * 5
        predictor = MarkovPredictor(graph, threshold=0.5, min_observations=2)
        coverage, shadows = coverage_and_cost(predictor, trace)
        assert coverage == 1.0
        # once learned, the predictor maintains a single shadow instead of the
        # whole grid neighbourhood
        assert shadows < graph.average_degree() + 1
