"""Unit tests for the relocation (handover) protocol pieces."""

import pytest

from repro.core.location import LocationSpace
from repro.core.location_filter import location_dependent
from repro.core.physical_mobility import HandoverReply, HandoverRequest, RelocationManager
from repro.core.virtual_client import VirtualClient
from repro.pubsub.filters import Equals, Filter
from repro.pubsub.notification import Notification

from helpers import FakeHost


@pytest.fixture
def space():
    return LocationSpace({"r1": "B1", "r2": "B2"})


@pytest.fixture
def old_side(space):
    """A virtual client at B1 that was active and then lost its device."""
    host = FakeHost()
    vc = VirtualClient("alice", host, "B1", space)
    vc.add_template("temp", location_dependent({"service": "temperature"}))
    vc.add_plain_filter("stock", Filter([Equals("service", "stock")]))
    vc.activate("r1")
    vc.deactivate()
    return host, vc


def stock(price):
    return Notification({"service": "stock", "price": price})


def temp(room):
    return Notification({"service": "temperature", "location": room})


class TestServeRequest:
    def test_reply_splits_plain_and_location_traffic(self, old_side):
        _host, vc = old_side
        vc.handle_notification(stock(1))
        vc.handle_notification(temp("r1"))
        vc.handle_notification(stock(2))
        manager = RelocationManager("B1", "R@B1")
        request = HandoverRequest(client_id="alice", new_broker="B2", new_replicator="R@B2")
        reply = manager.serve_request(vc, request, now=10.0)
        assert reply.found
        assert [n["price"] for n in reply.buffered_plain] == [1, 2]
        assert [n["location"] for n in reply.buffered_location] == ["r1"]
        assert "stock" in reply.plain_filters

    def test_serving_withdraws_plain_subscriptions(self, old_side):
        host, vc = old_side
        manager = RelocationManager("B1", "R@B1")
        manager.serve_request(vc, HandoverRequest("alice", "B2", "R@B2"), now=0.0)
        assert not any("plain" in sub_id for sub_id in host.subscribed)
        assert vc.plain_filters == {}

    def test_missing_virtual_client_reports_not_found(self):
        manager = RelocationManager("B1", "R@B1")
        reply = manager.serve_request(None, HandoverRequest("ghost", "B2", "R@B2"), now=0.0)
        assert not reply.found
        assert manager.stats.requests_served == 1


class TestApplyReply:
    def _new_side(self, space):
        host = FakeHost()
        vc = VirtualClient("alice", host, "B2", space)
        vc.add_template("temp", location_dependent({"service": "temperature"}))
        vc.activate("r2")
        return host, vc

    def test_plain_filters_and_traffic_relocated(self, space):
        host, vc = self._new_side(space)
        manager = RelocationManager("B2", "R@B2")
        reply = HandoverReply(
            client_id="alice",
            old_broker="B1",
            plain_filters={"stock": Filter([Equals("service", "stock")])},
            buffered_plain=[stock(1), stock(2)],
            buffered_location=[temp("r1")],
        )
        replay = manager.apply_reply(vc, reply, deliver_location_history=False)
        assert [n["price"] for n in replay] == [1, 2]
        assert "stock" in vc.plain_filters
        assert any("plain-stock" in sub_id for sub_id in host.subscribed)
        assert manager.stats.notifications_relocated == 2
        assert manager.stats.notifications_dropped_stale == 1

    def test_exception_mode_salvages_location_history(self, space):
        _host, vc = self._new_side(space)
        manager = RelocationManager("B2", "R@B2")
        reply = HandoverReply(
            client_id="alice",
            old_broker="B1",
            buffered_location=[temp("r1"), temp("r1")],
        )
        replay = manager.apply_reply(vc, reply, deliver_location_history=True)
        assert len(replay) == 2
        assert manager.stats.exception_recoveries == 2

    def test_not_found_reply_is_noop(self, space):
        _host, vc = self._new_side(space)
        manager = RelocationManager("B2", "R@B2")
        reply = HandoverReply(client_id="alice", old_broker="B1", found=False)
        assert manager.apply_reply(vc, reply, deliver_location_history=True) == []

    def test_round_trip_old_to_new(self, space):
        """Full protocol: buffer at the old side, serve, apply at the new side."""
        old_host = FakeHost()
        old_vc = VirtualClient("alice", old_host, "B1", space)
        old_vc.add_plain_filter("stock", Filter([Equals("service", "stock")]))
        old_vc.activate("r1")
        old_vc.deactivate()
        for price in (10, 11, 12):
            old_vc.handle_notification(stock(price))

        old_manager = RelocationManager("B1", "R@B1")
        new_manager = RelocationManager("B2", "R@B2")
        request = new_manager.build_request("alice")
        reply = old_manager.serve_request(old_vc, request, now=5.0)

        new_host, new_vc = self._new_side(space)
        replay = new_manager.apply_reply(new_vc, reply, deliver_location_history=False)
        assert [n["price"] for n in replay] == [10, 11, 12]
        assert new_manager.stats.requests_sent == 1
        assert old_manager.stats.requests_served == 1
