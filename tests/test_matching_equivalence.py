"""Property-style equivalence of the matching engines.

Feeds randomized subscriptions and notifications through
:func:`repro.pubsub.matching.cross_check`, covering the cases that exercise
the index's edges: ``InSet`` constraints (single- and multi-value),
unhashable filter values (which must take the unindexed fallback path) and
unhashable notification attribute values (which can never hit an index
bucket).
"""

from __future__ import annotations

import random

import pytest

from repro.pubsub.filters import Equals, Filter, InSet, Prefix, Range, match_all
from repro.pubsub.matching import (
    AttributeIndexMatcher,
    BruteForceMatcher,
    cross_check,
    pick_index_key,
)
from repro.pubsub.notification import Notification
from repro.pubsub.subscription import subscription

SERVICES = ["temperature", "stock", "news"]
LOCATIONS = ["r1", "r2", "r3", "r4"]


def random_subscription(rng: random.Random, index: int):
    roll = rng.random()
    constraints = []
    if roll < 0.30:
        constraints.append(Equals("service", rng.choice(SERVICES)))
    elif roll < 0.45:
        constraints.append(InSet("service", [rng.choice(SERVICES)]))
    elif roll < 0.60:
        constraints.append(InSet("location", rng.sample(LOCATIONS, rng.randint(1, 3))))
    elif roll < 0.70:
        constraints.append(Equals("tags", ["unhashable"]))  # unindexable value
    elif roll < 0.80:
        constraints.append(Prefix("service", rng.choice(["t", "s"])))
    elif roll < 0.90:
        constraints.append(Range("value", rng.randint(0, 10), rng.randint(10, 40)))
    # else: match-all (no constraints) — always a full-evaluation candidate
    if constraints and rng.random() < 0.4:
        constraints.append(Range("value", 0, rng.randint(5, 50)))
    return subscription(Filter(constraints), subscriber=f"c{index}", sub_id=f"s{index}")


def random_notification(rng: random.Random) -> Notification:
    attrs = {
        "service": rng.choice(SERVICES),
        "location": rng.choice(LOCATIONS),
        "value": rng.randint(0, 60),
    }
    if rng.random() < 0.15:
        attrs["tags"] = ["unhashable"]
    if rng.random() < 0.1:
        del attrs["service"]
    return Notification(attrs)


class TestMatcherEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_cross_check_randomized(self, seed):
        rng = random.Random(seed)
        brute = BruteForceMatcher()
        indexed = AttributeIndexMatcher()
        for i in range(rng.randint(20, 120)):
            sub = random_subscription(rng, i)
            brute.add(sub)
            indexed.add(sub)
        notifications = [random_notification(rng) for _ in range(150)]
        assert cross_check([brute, indexed], notifications)

    @pytest.mark.parametrize("seed", range(4))
    def test_cross_check_with_removals(self, seed):
        rng = random.Random(100 + seed)
        brute = BruteForceMatcher()
        indexed = AttributeIndexMatcher()
        subs = [random_subscription(rng, i) for i in range(80)]
        for sub in subs:
            brute.add(sub)
            indexed.add(sub)
        for sub in rng.sample(subs, 40):
            assert brute.remove(sub.sub_id) is not None
            assert indexed.remove(sub.sub_id) is not None
        assert len(brute) == len(indexed) == 40
        notifications = [random_notification(rng) for _ in range(100)]
        assert cross_check([brute, indexed], notifications)

    def test_index_prunes_candidates(self):
        """The fixed candidate lookup is O(notification attrs), and selective."""
        indexed = AttributeIndexMatcher()
        for i, service in enumerate(SERVICES * 10):
            indexed.add(subscription(Filter([Equals("service", service)]), "c", sub_id=f"s{i}-{service}"))
        indexed.full_evaluations = 0
        matched = indexed.match(Notification({"service": "stock"}))
        assert {s.sub_id.split("-")[1] for s in matched} == {"stock"}
        # only the stock bucket was evaluated, not all 30 subscriptions
        assert indexed.full_evaluations == 10

    def test_unhashable_notification_value_skips_buckets(self):
        indexed = AttributeIndexMatcher()
        brute = BruteForceMatcher()
        sub = subscription(Filter([Equals("tags", "x")]), "c", sub_id="s1")
        indexed.add(sub)
        brute.add(sub)
        n = Notification({"tags": ["a", "b"]})  # unhashable value under an indexed attribute
        assert cross_check([brute, indexed], [n])
        assert indexed.matching_ids(n) == set()


class TestPickIndexKey:
    def test_equals_is_indexable(self):
        assert pick_index_key(Filter([Equals("a", 1)])) == ("a", 1)

    def test_single_value_inset_is_indexable(self):
        assert pick_index_key(Filter([InSet("a", ["x"])])) == ("a", "x")

    def test_multi_value_inset_is_not(self):
        assert pick_index_key(Filter([InSet("a", ["x", "y"])])) is None

    def test_unhashable_equals_falls_through(self):
        assert pick_index_key(Filter([Equals("a", ["x"]), Equals("b", 2)])) == ("b", 2)

    def test_match_all_unindexable(self):
        assert pick_index_key(match_all()) is None
