"""Property-style equivalence of the matching engines.

Feeds randomized subscriptions and notifications through
:func:`repro.pubsub.matching.cross_check`, covering the cases that exercise
the index's edges: ``InSet`` constraints (single- and multi-value),
unhashable filter values (which must take the unindexed fallback path) and
unhashable notification attribute values (which can never hit an index
bucket).
"""

from __future__ import annotations

import random

import pytest

from repro.pubsub.filters import (
    AtLeast,
    Equals,
    Filter,
    InSet,
    LessThan,
    Prefix,
    Range,
    match_all,
)
from repro.pubsub.matching import (
    AttributeIndexMatcher,
    BruteForceMatcher,
    RangeSegmentIndex,
    cross_check,
    pick_index_key,
    pick_range_constraint,
)
from repro.pubsub.notification import Notification
from repro.pubsub.subscription import subscription

SERVICES = ["temperature", "stock", "news"]
LOCATIONS = ["r1", "r2", "r3", "r4"]


def random_subscription(rng: random.Random, index: int):
    roll = rng.random()
    constraints = []
    if roll < 0.30:
        constraints.append(Equals("service", rng.choice(SERVICES)))
    elif roll < 0.45:
        constraints.append(InSet("service", [rng.choice(SERVICES)]))
    elif roll < 0.60:
        constraints.append(InSet("location", rng.sample(LOCATIONS, rng.randint(1, 3))))
    elif roll < 0.70:
        constraints.append(Equals("tags", ["unhashable"]))  # unindexable value
    elif roll < 0.80:
        constraints.append(Prefix("service", rng.choice(["t", "s"])))
    elif roll < 0.90:
        constraints.append(Range("value", rng.randint(0, 10), rng.randint(10, 40)))
    # else: match-all (no constraints) — always a full-evaluation candidate
    if constraints and rng.random() < 0.4:
        constraints.append(Range("value", 0, rng.randint(5, 50)))
    return subscription(Filter(constraints), subscriber=f"c{index}", sub_id=f"s{index}")


def random_notification(rng: random.Random) -> Notification:
    attrs = {
        "service": rng.choice(SERVICES),
        "location": rng.choice(LOCATIONS),
        "value": rng.randint(0, 60),
    }
    if rng.random() < 0.15:
        attrs["tags"] = ["unhashable"]
    if rng.random() < 0.1:
        del attrs["service"]
    return Notification(attrs)


class TestMatcherEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_cross_check_randomized(self, seed):
        rng = random.Random(seed)
        brute = BruteForceMatcher()
        indexed = AttributeIndexMatcher()
        for i in range(rng.randint(20, 120)):
            sub = random_subscription(rng, i)
            brute.add(sub)
            indexed.add(sub)
        notifications = [random_notification(rng) for _ in range(150)]
        assert cross_check([brute, indexed], notifications)

    @pytest.mark.parametrize("seed", range(4))
    def test_cross_check_with_removals(self, seed):
        rng = random.Random(100 + seed)
        brute = BruteForceMatcher()
        indexed = AttributeIndexMatcher()
        subs = [random_subscription(rng, i) for i in range(80)]
        for sub in subs:
            brute.add(sub)
            indexed.add(sub)
        for sub in rng.sample(subs, 40):
            assert brute.remove(sub.sub_id) is not None
            assert indexed.remove(sub.sub_id) is not None
        assert len(brute) == len(indexed) == 40
        notifications = [random_notification(rng) for _ in range(100)]
        assert cross_check([brute, indexed], notifications)

    def test_index_prunes_candidates(self):
        """The fixed candidate lookup is O(notification attrs), and selective."""
        indexed = AttributeIndexMatcher()
        for i, service in enumerate(SERVICES * 10):
            indexed.add(subscription(Filter([Equals("service", service)]), "c", sub_id=f"s{i}-{service}"))
        indexed.full_evaluations = 0
        matched = indexed.match(Notification({"service": "stock"}))
        assert {s.sub_id.split("-")[1] for s in matched} == {"stock"}
        # only the stock bucket was evaluated, not all 30 subscriptions
        assert indexed.full_evaluations == 10

    def test_unhashable_notification_value_skips_buckets(self):
        indexed = AttributeIndexMatcher()
        brute = BruteForceMatcher()
        sub = subscription(Filter([Equals("tags", "x")]), "c", sub_id="s1")
        indexed.add(sub)
        brute.add(sub)
        n = Notification({"tags": ["a", "b"]})  # unhashable value under an indexed attribute
        assert cross_check([brute, indexed], [n])
        assert indexed.matching_ids(n) == set()


def random_range_subscription(rng: random.Random, index: int):
    """Filters dominated by Range/LessThan/AtLeast constraints (the paper's
    location/zone workloads), which must hit the segment index rather than
    the always-evaluated fallback set."""
    roll = rng.random()
    attribute = rng.choice(["value", "temperature", "zone"])
    if roll < 0.35:
        low = rng.randint(0, 40)
        constraints = [Range(attribute, low, low + rng.choice([3, 8, 15]))]
    elif roll < 0.55:
        constraints = [LessThan(attribute, rng.randint(5, 45))]
    elif roll < 0.75:
        constraints = [AtLeast(attribute, rng.randint(5, 45))]
    elif roll < 0.85:
        # half-open both ways around the same point: exercises boundary hits
        point = rng.randint(0, 50)
        constraints = [Range(attribute, point, point)]
    else:
        # a second range on another attribute: only one can be the index key
        constraints = [
            Range("value", rng.randint(0, 20), rng.randint(25, 50)),
            AtLeast("zone", rng.randint(0, 10)),
        ]
    if rng.random() < 0.25:
        constraints.append(Range("extra", 0, rng.randint(10, 60), include_high=False))
    return subscription(Filter(constraints), subscriber=f"c{index}", sub_id=f"s{index}")


def random_range_notification(rng: random.Random) -> Notification:
    attrs = {
        "value": rng.randint(0, 55),
        "temperature": rng.randint(0, 55),
        "zone": rng.randint(0, 12),
    }
    if rng.random() < 0.3:
        attrs["extra"] = rng.randint(0, 70)
    if rng.random() < 0.1:
        attrs["value"] = "not-a-number"  # Range never matches non-numeric values
    if rng.random() < 0.1:
        del attrs["zone"]
    return Notification(attrs)


class TestRangeHeavyEquivalence:
    """Satellite acceptance: Range-dominated workloads stay exact under the
    segment index, for both matchers and all five routing strategies."""

    @pytest.mark.parametrize("seed", range(8))
    def test_cross_check_randomized(self, seed):
        rng = random.Random(500 + seed)
        brute = BruteForceMatcher()
        indexed = AttributeIndexMatcher()
        for i in range(rng.randint(30, 150)):
            sub = random_range_subscription(rng, i)
            brute.add(sub)
            indexed.add(sub)
        notifications = [random_range_notification(rng) for _ in range(150)]
        assert cross_check([brute, indexed], notifications)

    @pytest.mark.parametrize("seed", range(4))
    def test_cross_check_with_removals(self, seed):
        rng = random.Random(600 + seed)
        brute = BruteForceMatcher()
        indexed = AttributeIndexMatcher()
        subs = [random_range_subscription(rng, i) for i in range(90)]
        for sub in subs:
            brute.add(sub)
            indexed.add(sub)
        for sub in rng.sample(subs, 45):
            assert brute.remove(sub.sub_id) is not None
            assert indexed.remove(sub.sub_id) is not None
        assert len(brute) == len(indexed) == 45
        notifications = [random_range_notification(rng) for _ in range(120)]
        assert cross_check([brute, indexed], notifications)

    def test_range_filters_are_not_unindexed(self):
        """A range-only filter must land in the segment index, not the
        always-evaluated fallback set."""
        indexed = AttributeIndexMatcher()
        for i in range(20):
            low = 3 * i
            indexed.add(
                subscription(Filter([Range("value", low, low + 2)]), "c", sub_id=f"s{i}")
            )
        indexed.full_evaluations = 0
        matched = indexed.match(Notification({"value": 31}))
        assert {s.sub_id for s in matched} == {"s10"}  # [30, 32]
        # only the segment containing 31 was evaluated, not all 20 filters
        assert indexed.full_evaluations <= 2

    @pytest.mark.parametrize("strategy", ["flooding", "simple", "identity", "covering", "merging"])
    @pytest.mark.parametrize("matcher", ["brute", "indexed"])
    def test_all_strategies_deliver_exactly_under_range_workload(self, strategy, matcher):
        from repro.net.simulator import Simulator
        from repro.pubsub.broker_network import random_tree_topology

        rng = random.Random(9)
        sim = Simulator()
        network = random_tree_topology(sim, 5, routing=strategy, seed=3, matcher=matcher)
        brokers = network.broker_names()
        subscribers = []
        for i in range(10):
            client = network.add_client(f"sub-{i}", brokers[i % len(brokers)])
            sub = random_range_subscription(rng, i)
            client.subscribe(sub.filter, sub_id=f"rs{i}")
            subscribers.append((client, sub.filter))
        sim.run_until_idle()
        publisher = network.add_client("pub", brokers[0])
        published = []
        for i in range(50):
            n = Notification(dict(random_range_notification(rng)), notification_id=100 + i)
            publisher.publish(n)
            published.append(n)
        sim.run_until_idle()
        for client, filter in subscribers:
            expected = sorted(
                n.notification_id for n in published if filter.matches(n)
            )
            received = sorted(d.notification.notification_id for d in client.deliveries)
            assert received == expected, f"{strategy}/{matcher}: {client.name}"


class TestRangeSegmentIndex:
    def test_stabbing_and_boundaries(self):
        index = RangeSegmentIndex()
        index.add("a", Range("v", 0, 10), "A")
        index.add("b", Range("v", 10, 20), "B")
        index.add("c", Range("v", 5, 15), "C")
        assert set(index.candidates(10)) == {"A", "B", "C"}  # boundary point
        assert set(index.candidates(3)) == {"A"}
        assert set(index.candidates(12)) == {"B", "C"}
        assert set(index.candidates(25)) == set()
        assert index.candidates("nan-string") == []
        assert index.candidates(True) == []

    def test_half_open_and_infinite_ranges(self):
        index = RangeSegmentIndex()
        index.add("lt", LessThan("v", 10), "LT")
        index.add("ge", AtLeast("v", 5), "GE")
        index.add("all", Range("v"), "ALL")
        assert set(index.candidates(0)) == {"LT", "ALL"}
        assert set(index.candidates(7)) == {"LT", "GE", "ALL"}
        assert set(index.candidates(100)) == {"GE", "ALL"}
        # candidacy ignores endpoint inclusivity: LessThan(10) still appears
        # for value 10 (full evaluation rejects it afterwards)
        assert "LT" in set(index.candidates(10))

    def test_discard_and_rebuild(self):
        index = RangeSegmentIndex()
        index.add("a", Range("v", 0, 10), "A")
        index.add("b", Range("v", 5, 15), "B")
        assert set(index.candidates(7)) == {"A", "B"}
        index.discard("a")
        assert set(index.candidates(7)) == {"B"}
        index.discard("b")
        assert index.candidates(7) == []
        assert len(index) == 0

    def test_overlapping_ranges_coarsen_but_stay_exact(self):
        """Heavily overlapping ranges trip the memory guard: the boundary
        list is coarsened, results stay a superset and memory stays linear."""
        index = RangeSegmentIndex()
        for i in range(80):
            index.add(f"s{i}", Range("v", i, 1000 + i), f"P{i}")
        candidates = set(index.candidates(500))
        assert candidates == {f"P{i}" for i in range(80)}
        slots = sum(len(segment) for segment in index._segments)
        assert slots <= RangeSegmentIndex.MAX_SLOTS_PER_ENTRY * 80 + 64
        # selective queries still prune: nothing matches left of all ranges
        assert index.candidates(-5) == []

    def test_pick_range_constraint_prefers_bounded(self):
        bounded = Range("a", 0, 5)
        half = AtLeast("b", 3)
        assert pick_range_constraint(Filter([half, bounded])) is bounded
        assert pick_range_constraint(Filter([half])) is half
        assert pick_range_constraint(Filter([Equals("a", 1)])) is None


class TestPickIndexKey:
    def test_equals_is_indexable(self):
        assert pick_index_key(Filter([Equals("a", 1)])) == ("a", 1)

    def test_single_value_inset_is_indexable(self):
        assert pick_index_key(Filter([InSet("a", ["x"])])) == ("a", "x")

    def test_multi_value_inset_is_not(self):
        assert pick_index_key(Filter([InSet("a", ["x", "y"])])) is None

    def test_unhashable_equals_falls_through(self):
        assert pick_index_key(Filter([Equals("a", ["x"]), Equals("b", 2)])) == ("b", 2)

    def test_match_all_unindexable(self):
        assert pick_index_key(match_all()) is None
