"""Tests for the multi-process cluster runner and its registry.

Three groups:

* **backend equivalence** — the cluster backend (one OS process per broker)
  must deliver exactly the notification sets the deterministic simulator
  delivers for the same scenario, on a covering 3-broker topology;
* **registry edge cases** — duplicate broker names, lookups of unknown
  brokers, port collision retry;
* **failure semantics** — a broker process dying mid-run is detected and
  reported by the parent; the broker topology freezes once booted.
"""

import asyncio
import socket

import pytest

from repro.net.cluster import ClusterError, ClusterTransport
from repro.net.process import Process
from repro.net.registry import (
    RegistryError,
    RegistryServer,
    lookup,
    register_node,
    report_ready,
)
from repro.pubsub.broker_network import line_topology
from repro.pubsub.filters import Equals, Filter, Prefix, Range
from repro.pubsub.notification import Notification
from repro.pubsub.testing import run_line_workload


# ------------------------------------------------------------- equivalence


def covering_scenario(backend: str):
    """Subscribe/publish churn on a 3-broker covering line; returns delivered sets.

    Everything that would consult a process-global counter (notification
    ids, subscription ids) is pinned, so the delivered sets are comparable
    across backends and across OS processes.
    """
    net = line_topology(
        n_brokers=3,
        routing="covering",
        transport=backend,
        link_latency=0.001 if backend == "sim" else 0.0,
    )
    try:
        c1 = net.add_client("c1", "B1")
        c2 = net.add_client("c2", "B3")
        c3 = net.add_client("c3", "B2")
        publisher = net.add_client("pub", "B3")

        # c1's broad filter covers c2's narrow one, so covering routing
        # suppresses part of the narrow advertisement across the line
        c1.subscribe(Filter([Equals("service", "temp")]), sub_id="g1")
        c2.subscribe(Filter([Equals("service", "temp"), Range("value", 10, 30)]), sub_id="g2")
        c3.subscribe(Filter([Prefix("room", "r")]), sub_id="g3")
        net.run_until_idle()

        for i in range(8):
            publisher.publish(
                Notification(
                    {"service": "temp", "value": 5 * i, "room": f"r{i % 3}"},
                    notification_id=7000 + i,
                )
            )
        net.run_until_idle()

        # churn: the covering subscription leaves, the narrow one must take over
        c1.unsubscribe("g1")
        net.run_until_idle()
        for i in range(8, 12):
            publisher.publish(
                Notification(
                    {"service": "temp", "value": 5 * i, "room": f"r{i % 3}"},
                    notification_id=7000 + i,
                )
            )
        net.run_until_idle()

        delivered = {
            name: sorted(d.notification.notification_id for d in client.deliveries)
            for name, client in net.clients.items()
        }
        duplicates = {name: client.duplicate_deliveries() for name, client in net.clients.items()}
        return delivered, duplicates
    finally:
        net.close()


def test_cluster_delivers_identical_sets_to_simulator():
    """A 3-broker covering topology delivers the same sets sim vs cluster."""
    sim_delivered, sim_duplicates = covering_scenario("sim")
    cluster_delivered, cluster_duplicates = covering_scenario("cluster")
    assert cluster_delivered == sim_delivered
    assert cluster_duplicates == sim_duplicates
    # the scenario is only meaningful if somebody actually got something
    assert sum(len(ids) for ids in sim_delivered.values()) > 0


def test_cluster_line_workload_delivers_exactly():
    """The canonical line workload verifies end-to-end on broker processes."""
    result = run_line_workload("cluster", 3, 24)
    assert result.mismatches == 0
    assert result.delivered == result.expected > 0
    assert all(latency >= 0 for latency in result.all_latencies())


def test_cluster_polls_remote_broker_and_link_stats():
    """After quiescence, remote broker/link counters are visible in the parent."""
    net = line_topology(n_brokers=3, transport="cluster", link_latency=0.0)
    try:
        subscriber = net.add_client("sub", "B3")
        subscriber.subscribe(Filter([Equals("topic", "t")]), sub_id="s1")
        net.run_until_idle()
        publisher = net.add_client("pub", "B1")
        for value in range(5):
            publisher.publish(Notification({"topic": "t", "value": value}))
        net.run_until_idle()

        assert len(subscriber.deliveries) == 5
        # per-broker counters polled over the registry control channels
        b2 = net.brokers["B2"]
        assert b2.stats()["routed"] == 5
        assert b2.routing_table_size() >= 1
        # broker-to-broker edge stats come from the freshest poll
        assert net.broker_link_messages(kind="publish") >= 10  # 2 edges x 5 publishes
        assert net.total_messages() > 0
    finally:
        net.close()


# ----------------------------------------------------------------- registry


def test_run_until_idle_waits_for_scheduled_parent_callbacks():
    """A scheduled-but-unfired clock callback keeps the cluster busy.

    Regression: the conservation check alone would declare idleness before
    a parent-side ``sim.schedule`` callback fires (the asyncio backend's
    idle condition also counts pending timers; the cluster must match).
    """
    net = line_topology(n_brokers=2, transport="cluster", link_latency=0.0)
    try:
        subscriber = net.add_client("sub", "B2")
        subscriber.subscribe(Filter([Equals("topic", "t")]), sub_id="s1")
        net.run_until_idle()
        publisher = net.add_client("pub", "B1")
        net.sim.schedule(0.15, lambda: publisher.publish(Notification({"topic": "t", "value": 1})))
        net.run_until_idle()
        assert len(subscriber.deliveries) == 1
    finally:
        net.close()


def test_registry_rejects_duplicate_broker_name():
    async def scenario():
        registry = RegistryServer()
        await registry.start()
        try:
            first = await register_node(registry.address, "B1", "127.0.0.1", 1111)
            try:
                with pytest.raises(RegistryError, match="duplicate broker name 'B1'"):
                    await register_node(registry.address, "B1", "127.0.0.1", 2222)
            finally:
                first.close()
        finally:
            await registry.close()

    asyncio.run(scenario())


def test_registry_lookup_unknown_broker_times_out():
    async def scenario():
        registry = RegistryServer()
        await registry.start()
        try:
            with pytest.raises(RegistryError, match="unknown broker 'nope'"):
                await lookup(registry.address, "nope", timeout=0.2)
        finally:
            await registry.close()

    asyncio.run(scenario())


def test_registry_lookup_waits_for_late_registration():
    async def scenario():
        registry = RegistryServer()
        await registry.start()
        try:
            async def register_later():
                await asyncio.sleep(0.1)
                return await register_node(registry.address, "late", "127.0.0.1", 4242)

            register_task = asyncio.ensure_future(register_later())
            address = await lookup(registry.address, "late", timeout=5.0)
            assert address == ("127.0.0.1", 4242)
            (await register_task).close()
        finally:
            await registry.close()

    asyncio.run(scenario())


def test_registry_port_collision_retries_next_port():
    blocker = socket.socket()
    blocker.bind(("127.0.0.1", 0))
    blocker.listen(1)
    taken = blocker.getsockname()[1]

    async def scenario():
        registry = RegistryServer(port=taken, port_retries=4)
        bound = await registry.start()
        try:
            assert taken < bound[1] <= taken + 4
        finally:
            await registry.close()

        # with retries disabled the collision is fatal
        stubborn = RegistryServer(port=taken, port_retries=0)
        with pytest.raises(RegistryError, match="could not bind"):
            await stubborn.start()

    try:
        asyncio.run(scenario())
    finally:
        blocker.close()


def test_registry_ready_barrier():
    async def scenario():
        registry = RegistryServer()
        await registry.start()
        try:
            channel = await register_node(registry.address, "B1", "127.0.0.1", 9999)
            with pytest.raises(RegistryError, match="never became ready"):
                await registry.wait_ready(["B1"], timeout=0.2)
            await report_ready(channel, "B1")
            await registry.wait_ready(["B1"], timeout=1.0)
            channel.close()
        finally:
            await registry.close()

    asyncio.run(scenario())


# ----------------------------------------------------------------- failures


def test_parent_detects_broker_process_death_mid_run():
    net = line_topology(n_brokers=3, transport="cluster", link_latency=0.0)
    try:
        subscriber = net.add_client("sub", "B3")
        subscriber.subscribe(Filter([Equals("topic", "t")]), sub_id="s1")
        net.run_until_idle()

        net.transport._children["B2"].kill()
        publisher = net.add_client("pub", "B1")
        publisher.publish(Notification({"topic": "t", "value": 1}))
        with pytest.raises(ClusterError, match="(B2.*exited|lost contact)"):
            net.run_until_idle()
    finally:
        net.close()
    # close() records the killed child's exit code as a failure
    assert "B2" in net.transport.failures


def test_topology_frozen_after_boot():
    net = line_topology(n_brokers=2, transport="cluster", link_latency=0.0)
    try:
        net.add_client("c", "B1")  # first attachment boots the cluster
        with pytest.raises(ClusterError, match="frozen|after the cluster has booted"):
            net.add_broker("B9")
    finally:
        net.close()


def test_local_to_local_links_rejected():
    transport = ClusterTransport()
    try:
        transport.build_broker("B1")
        a, b = Process(transport.clock, "a"), Process(transport.clock, "b")
        with pytest.raises(ClusterError, match="clients to brokers"):
            transport.make_link(a, b)
    finally:
        transport.close()
