"""Property-based equivalence of routing strategies.

The fundamental correctness property of content-based routing (Sect. 2): no
matter which routing optimisation is used, every subscriber receives exactly
the published notifications its filters match.  Flooding is the trivially
correct reference; the other strategies must agree with it.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.net.simulator import Simulator
from repro.pubsub.broker_network import random_tree_topology
from repro.pubsub.filters import Equals, Filter, InSet, Range
from repro.pubsub.routing import STRATEGIES

SERVICES = ["temperature", "stock", "news"]
LOCATIONS = ["r1", "r2", "r3", "r4"]


@st.composite
def subscription_specs(draw):
    """(broker_index, filter) pairs."""
    broker_index = draw(st.integers(0, 5))
    service = draw(st.sampled_from(SERVICES))
    constraints = [Equals("service", service)]
    if draw(st.booleans()):
        constraints.append(InSet("location", draw(st.sets(st.sampled_from(LOCATIONS), min_size=1, max_size=3))))
    if draw(st.booleans()):
        low = draw(st.integers(0, 20))
        constraints.append(Range("value", low, low + draw(st.integers(0, 20))))
    return broker_index, Filter(constraints)


@st.composite
def publication_specs(draw):
    """(broker_index, attributes) pairs."""
    broker_index = draw(st.integers(0, 5))
    attrs = {
        "service": draw(st.sampled_from(SERVICES)),
        "location": draw(st.sampled_from(LOCATIONS)),
        "value": draw(st.integers(0, 40)),
    }
    return broker_index, attrs


def _run(strategy, n_brokers, subs, pubs, seed):
    sim = Simulator()
    network = random_tree_topology(sim, n_brokers, routing=strategy, seed=seed)
    brokers = network.broker_names()
    subscribers = []
    for index, (broker_index, filter) in enumerate(subs):
        client = network.add_client(f"sub-{index}", brokers[broker_index % len(brokers)])
        client.subscribe(filter)
        subscribers.append((client, filter))
    sim.run_until_idle()
    publishers = {}
    for broker_index, _attrs in pubs:
        name = brokers[broker_index % len(brokers)]
        if name not in publishers:
            publishers[name] = network.add_client(f"pub-{name}", name)
    sim.run_until_idle()
    published = []
    for seq, (broker_index, attrs) in enumerate(pubs):
        name = brokers[broker_index % len(brokers)]
        published.append(publishers[name].publish({**attrs, "seq": seq}))
    sim.run_until_idle()
    deliveries = {
        client.name: sorted(d.notification["seq"] for d in client.deliveries)
        for client, _filter in subscribers
    }
    return deliveries, subscribers, published


@settings(max_examples=25, deadline=None)
@given(
    subs=st.lists(subscription_specs(), min_size=1, max_size=5),
    pubs=st.lists(publication_specs(), min_size=1, max_size=8),
    n_brokers=st.integers(2, 7),
    seed=st.integers(0, 10),
)
def test_all_strategies_deliver_exactly_the_matching_notifications(subs, pubs, n_brokers, seed):
    reference, subscribers, published = _run("flooding", n_brokers, subs, pubs, seed)

    # Flooding itself must deliver exactly the matching notifications.
    for client, filter in subscribers:
        expected = sorted(
            n["seq"] for n in published if filter.matches(n) and n.publisher != client.name
        )
        assert reference[client.name] == expected

    for strategy in sorted(STRATEGIES):
        if strategy == "flooding":
            continue
        result, _subscribers, _published = _run(strategy, n_brokers, subs, pubs, seed)
        assert result == reference, f"strategy {strategy} disagrees with flooding"
