"""Regression tests for bounded duplicate suppression in the broker."""

from repro.net.process import Message
from repro.net.simulator import Simulator
from repro.pubsub.broker import Broker
from repro.pubsub.notification import Notification


def publish(broker, notification_id):
    n = Notification({"service": "t"}, notification_id=notification_id)
    broker.on_message(Message(kind="publish", payload=n, sender=""))


class TestDuplicateSuppression:
    def test_duplicates_dropped(self):
        broker = Broker(Simulator(), "B1")
        broker.deduplicate = True
        publish(broker, 1)
        publish(broker, 1)
        assert broker.duplicate_publishes_dropped == 1
        assert broker.notifications_routed == 1

    def test_memory_is_bounded(self):
        broker = Broker(Simulator(), "B1", duplicates_capacity=3)
        broker.deduplicate = True
        for notification_id in range(100):
            publish(broker, notification_id)
        assert len(broker._seen_notification_ids) <= 3

    def test_fifo_eviction_forgets_oldest_first(self):
        broker = Broker(Simulator(), "B1", duplicates_capacity=2)
        broker.deduplicate = True
        publish(broker, 1)
        publish(broker, 2)
        publish(broker, 3)  # evicts id 1
        publish(broker, 3)  # genuine duplicate, still remembered
        assert broker.duplicate_publishes_dropped == 1
        publish(broker, 1)  # id 1 was evicted: routed again, not dropped
        assert broker.duplicate_publishes_dropped == 1
        assert broker.notifications_routed == 4

    def test_default_capacity(self):
        broker = Broker(Simulator(), "B1")
        assert broker.duplicates_capacity == Broker.DEFAULT_DUPLICATES_CAPACITY

    def test_dedup_off_keeps_no_state(self):
        broker = Broker(Simulator(), "B1")
        publish(broker, 1)
        publish(broker, 1)
        assert broker.duplicate_publishes_dropped == 0
        assert len(broker._seen_notification_ids) == 0
