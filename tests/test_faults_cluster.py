"""Chaos tests: fault injection and recovery on the multi-process cluster.

Three groups:

* **convergence** — ``kill -9`` of a mid-workload broker followed by a
  supervised restart (and a TCP link sever/restore) must converge back to
  the exact delivery sets the deterministic simulator produces for the same
  scenario — the acceptance criterion of the fault-tolerance work;
* **fault-plane surface** — misuse of the injection API (unknown actions,
  missing targets, double kills) fails loudly instead of corrupting state;
* **supervision** — a child dying during boot fails fast with its exit code,
  and the registry supports re-registration after a deliberate kill while
  still rejecting genuinely duplicate live names.
"""

import asyncio
import subprocess
import sys

import pytest

from repro.net.cluster import ClusterError, ClusterTransport
from repro.net.registry import RegistryError, RegistryServer, register_node
from repro.net.transport import TransportError
from repro.pubsub.broker_network import line_topology
from repro.pubsub.chaos import run_chaos_scenario


# ------------------------------------------------------------- convergence


def test_kill9_and_restart_converge_to_sim_baseline():
    """The tentpole guarantee: chaos on real processes == the sim baseline.

    The scenario SIGKILLs broker B2 mid-workload, restarts it under
    supervision (cold start: re-register, re-dial with backoff, re-sync
    routing state, re-attach clients), then severs and restores the B2-B3
    TCP link — and the post-recovery delivered sets must equal what the
    simulator's warm-crash model delivers for the identical storyline.
    """
    baseline = run_chaos_scenario("sim")
    chaotic = run_chaos_scenario("cluster")
    assert chaotic.delivered == baseline.delivered
    assert chaotic.duplicates == 0
    assert chaotic.lost == baseline.lost == 8
    assert chaotic.replayed == baseline.replayed == 8
    # every fault primitive fired exactly once, and B2's one client re-attached
    assert chaotic.recovery == {
        "kills": 1,
        "restarts": 1,
        "link_severs": 1,
        "link_restores": 1,
        "client_resubscribes": 1,
    }
    # each re-established link re-syncs in both directions: the restarted
    # B2 re-links to two neighbours (4 markers), the restored edge adds 2
    assert chaotic.resync_markers == 6
    # the simulator models a warm crash (state retained), so it never resyncs
    assert baseline.resync_markers == 0


def test_sever_restore_only_matches_sim():
    baseline = run_chaos_scenario("sim", kill=False)
    chaotic = run_chaos_scenario("cluster", kill=False)
    assert chaotic.delivered == baseline.delivered
    assert chaotic.resync_markers == 2
    assert chaotic.recovery["kills"] == 0
    assert chaotic.recovery["link_severs"] == 1


def test_asyncio_backend_matches_sim():
    """The loop-safe in-process fault path converges too (warm crashes)."""
    baseline = run_chaos_scenario("sim")
    asyncio_run = run_chaos_scenario("asyncio")
    assert asyncio_run.delivered == baseline.delivered
    assert asyncio_run.duplicates == 0


# ------------------------------------------------------- fault-plane surface


def test_fault_injection_surface_rejects_misuse():
    net = line_topology(n_brokers=2, transport="cluster", link_latency=0.0)
    try:
        net.add_client("c", "B1")  # first attachment boots the cluster
        transport = net.transport
        assert transport.supports_fault_injection
        with pytest.raises(ClusterError, match="unknown broker 'ZZ'"):
            transport.kill_broker("ZZ")
        with pytest.raises(TransportError, match="unknown fault action 'explode'"):
            transport.inject_fault("explode")
        with pytest.raises(TransportError, match="requires a process target"):
            transport.inject_fault("crash")
        with pytest.raises(TransportError, match="requires a link target"):
            transport.inject_fault("link_down")
        client_link = transport._client_link("c", "B1")
        with pytest.raises(ClusterError, match="broker-to-broker"):
            client_link.set_up(False)
        with pytest.raises(ClusterError, match="not down"):
            transport.restart_broker("B2")
        transport.kill_broker("B2")
        with pytest.raises(ClusterError, match="already down"):
            transport.kill_broker("B2")
        transport.restart_broker("B2")
        net.run_until_idle()  # the recovered cluster still quiesces cleanly
        assert transport.recovery["kills"] == 1
        assert transport.recovery["restarts"] == 1
    finally:
        net.close()


def test_deliberate_kill_is_not_reported_as_a_crash():
    """``kill_broker`` must not trip the surprise-crash detector."""
    net = line_topology(n_brokers=2, transport="cluster", link_latency=0.0)
    try:
        subscriber = net.add_client("sub", "B1")
        net.run_until_idle()
        net.transport.kill_broker("B2")
        net.run_until_idle()  # lossy quiescence, no ClusterError
        assert net.transport.recovery["kills"] == 1
    finally:
        net.close()


# ---------------------------------------------------------------- supervision


def test_child_death_during_boot_fails_fast_with_exit_code(monkeypatch):
    transport = ClusterTransport(boot_timeout=30.0)
    try:
        a = transport.build_broker("B1")
        b = transport.build_broker("B2")
        transport.make_link(a, b)
        real_spawn = transport._spawn

        def crashy_spawn(spec):
            if spec["name"] == "B2":
                return subprocess.Popen([sys.executable, "-c", "import sys; sys.exit(7)"])
            return real_spawn(spec)

        monkeypatch.setattr(transport, "_spawn", crashy_spawn)
        with pytest.raises(ClusterError, match="'B2' exited with code 7"):
            transport.boot()
        # a failed boot must not leak half a cluster
        assert "closed" in repr(transport)
    finally:
        transport.close()


def test_registry_allows_reregistration_after_forget():
    async def scenario():
        registry = RegistryServer()
        await registry.start()
        try:
            first = await register_node(registry.address, "B1", "127.0.0.1", 1111)
            # a live holder of the name is still a genuine duplicate
            with pytest.raises(RegistryError, match="duplicate broker name 'B1'"):
                await register_node(registry.address, "B1", "127.0.0.1", 2222)
            registry.forget("B1")
            assert "B1" not in registry.registered
            # ...but after a deliberate kill the name is free again
            second = await register_node(registry.address, "B1", "127.0.0.1", 3333)
            assert registry.registered["B1"] == ("127.0.0.1", 3333)
            assert "B1" not in registry.disconnected
            # the stale first channel's EOF must not clobber the fresh one
            first.close()
            await asyncio.sleep(0.05)
            assert "B1" in registry.registered
            assert "B1" not in registry.disconnected
            second.close()
        finally:
            await registry.close()

    asyncio.run(scenario())
