"""Unit tests for notifications, subscriptions and the matching engines."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.pubsub.filters import Equals, Filter, InSet, Range, filter_from_dict
from repro.pubsub.matching import AttributeIndexMatcher, BruteForceMatcher, cross_check
from repro.pubsub.notification import Notification, notification
from repro.pubsub.subscription import Subscription, next_subscription_id, subscription


class TestNotification:
    def test_mapping_interface(self):
        n = notification(service="temperature", value=21)
        assert n["service"] == "temperature"
        assert n.get("missing") is None
        assert set(n) == {"service", "value"}
        assert len(n) == 2

    def test_ids_unique(self):
        assert notification(a=1).notification_id != notification(a=1).notification_id

    def test_stamped_keeps_id_and_content(self):
        original = notification(a=1)
        stamped = original.stamped(published_at=3.0, publisher="p")
        assert stamped.notification_id == original.notification_id
        assert stamped.published_at == 3.0
        assert stamped.publisher == "p"
        assert stamped == original

    def test_with_attributes_changes_id(self):
        original = notification(a=1)
        updated = original.with_attributes(a=2, b=3)
        assert updated["a"] == 2 and updated["b"] == 3
        assert updated.notification_id != original.notification_id

    def test_digest_stable(self):
        n = notification(a=1, b="x")
        assert n.digest() == n.digest()

    def test_estimated_size_counts_strings(self):
        small = notification(a="x")
        large = notification(a="x" * 100)
        assert large.estimated_size() > small.estimated_size()


class TestSubscription:
    def test_id_generation_unique(self):
        assert next_subscription_id() != next_subscription_id()

    def test_factory_defaults(self):
        sub = subscription(filter_from_dict({"service": "t"}), subscriber="alice")
        assert sub.subscriber == "alice"
        assert not sub.location_dependent
        assert sub.matches({"service": "t"})

    def test_rebound_keeps_identity(self):
        sub = subscription(filter_from_dict({"service": "t"}), subscriber="alice")
        rebound = sub.rebound(filter_from_dict({"service": "t", "location": "r1"}))
        assert rebound.sub_id == sub.sub_id
        assert rebound.filter != sub.filter

    def test_for_subscriber(self):
        sub = subscription(filter_from_dict({"service": "t"}), subscriber="alice")
        shadow = sub.for_subscriber("shadow-of-alice")
        assert shadow.sub_id == sub.sub_id
        assert shadow.subscriber == "shadow-of-alice"

    def test_estimated_size(self):
        sub = subscription(filter_from_dict({"service": "t"}), subscriber="alice")
        assert sub.estimated_size() > 0


def _make_subs():
    return [
        subscription(Filter([Equals("service", "temperature")]), "a", sub_id="s1"),
        subscription(Filter([Equals("service", "stock")]), "b", sub_id="s2"),
        subscription(Filter([Equals("service", "temperature"), Range("value", 0, 10)]), "c", sub_id="s3"),
        subscription(Filter([InSet("location", {"r1", "r2"})]), "d", sub_id="s4"),
        subscription(Filter([]), "e", sub_id="s5"),  # match-all
    ]


@pytest.mark.parametrize("matcher_cls", [BruteForceMatcher, AttributeIndexMatcher])
class TestMatchers:
    def test_basic_matching(self, matcher_cls):
        matcher = matcher_cls()
        for sub in _make_subs():
            matcher.add(sub)
        matched = matcher.matching_ids({"service": "temperature", "value": 5, "location": "r9"})
        assert matched == {"s1", "s3", "s5"}

    def test_remove(self, matcher_cls):
        matcher = matcher_cls()
        for sub in _make_subs():
            matcher.add(sub)
        matcher.remove("s1")
        assert "s1" not in matcher
        assert matcher.matching_ids({"service": "temperature", "value": 50}) == {"s5"}

    def test_len_and_contains(self, matcher_cls):
        matcher = matcher_cls()
        for sub in _make_subs():
            matcher.add(sub)
        assert len(matcher) == 5
        assert "s2" in matcher
        matcher.clear()
        assert len(matcher) == 0

    def test_remove_missing_returns_none(self, matcher_cls):
        assert matcher_cls().remove("nope") is None


@settings(max_examples=100, deadline=None)
@given(
    notifications=st.lists(
        st.fixed_dictionaries(
            {},
            optional={
                "service": st.sampled_from(["temperature", "stock", "news"]),
                "value": st.integers(-5, 20),
                "location": st.sampled_from(["r1", "r2", "r3"]),
            },
        ),
        min_size=1,
        max_size=20,
    )
)
def test_index_matcher_agrees_with_brute_force(notifications):
    brute = BruteForceMatcher()
    indexed = AttributeIndexMatcher()
    for sub in _make_subs():
        brute.add(sub)
        indexed.add(sub)
    wrapped = [Notification(attrs) for attrs in notifications]
    assert cross_check([brute, indexed], wrapped)
