"""Integration tests for the replicator layer through the MobilePubSub facade.

These tests exercise the paper's algorithm end to end on the simulator:
client setup (3.2.1), client operation (3.2.2), client handover (3.2.3),
client removal (3.2.4), the physical-mobility relocation and the exception
mode, asserting the externally observable guarantees (shadow placement,
replay, no loss, garbage collection).
"""

import pytest

from repro.core.location import office_floor_space
from repro.core.location_filter import location_dependent
from repro.core.middleware import MobilePubSub, MobilitySystemConfig
from repro.core.replicator import SHADOW_CREATE, SHADOW_DELETE, ReplicatorConfig
from repro.net.simulator import Simulator
from repro.pubsub.broker_network import line_topology
from repro.pubsub.filters import Equals, Filter


def build_system(config=None, n_rooms=12, rooms_per_broker=3):
    sim = Simulator()
    space = office_floor_space(n_rooms=n_rooms, rooms_per_broker=rooms_per_broker)
    network = line_topology(sim, len(space.brokers()))
    system = MobilePubSub(sim, network, space, config=config)
    return sim, space, system


def deploy_sensors(system, space):
    sensors = {room: system.add_publisher(f"sensor-{room}", room) for room in space.locations}

    def publish_all():
        published = []
        for room, sensor in sensors.items():
            published.append(sensor.publish({"service": "temperature", "location": room, "value": 20}))
        return published

    return publish_all


class TestClientSetup:
    def test_attach_creates_active_vc_and_neighbour_shadows(self):
        sim, space, system = build_system()
        client = system.add_mobile_client("alice")
        client.subscribe_location(location_dependent({"service": "temperature"}))
        system.attach(client, location=space.locations[0])
        sim.run_until_idle()

        assert client.connected
        assert client.current_broker == "B1"
        # nlb(B1) = {B2} on the line, so shadows live at B1 (active) and B2 (shadow)
        assert sorted(system.shadow_map().keys()) == ["B1", "B2"]
        assert system.replicators["B1"].virtual_clients["alice"].is_active
        assert not system.replicators["B2"].virtual_clients["alice"].is_active
        assert system.replicators["B3"].virtual_clients == {}

    def test_welcome_reports_setup_latency(self):
        sim, space, system = build_system()
        client = system.add_mobile_client("alice")
        system.attach(client, location=space.locations[0])
        sim.run_until_idle()
        latencies = client.setup_latencies()
        assert len(latencies) == 1
        assert latencies[0] > 0

    def test_static_clients_coexist(self):
        sim, space, system = build_system()
        static = system.add_static_client("wall-display", "B1")
        static.subscribe(Filter([Equals("service", "temperature")]))
        publish_all = deploy_sensors(system, space)
        sim.run_until_idle()
        publish_all()
        sim.run_until_idle()
        assert len(static.deliveries) == len(space.locations)


class TestClientOperation:
    def test_live_delivery_only_for_current_location(self):
        sim, space, system = build_system()
        publish_all = deploy_sensors(system, space)
        client = system.add_mobile_client("alice")
        client.subscribe_location(location_dependent({"service": "temperature"}))
        system.attach(client, location=space.locations[0])
        sim.run_until_idle()
        publish_all()
        sim.run_until_idle()
        live = [d for d in client.deliveries if not d.replayed]
        assert [d.notification["location"] for d in live] == [space.locations[0]]

    def test_publish_passes_through_replicator(self):
        sim, space, system = build_system()
        subscriber = system.add_static_client("listener", "B3")
        subscriber.subscribe(Filter([Equals("service", "chat")]))
        client = system.add_mobile_client("alice")
        system.attach(client, location=space.locations[0])
        sim.run_until_idle()
        client.publish({"service": "chat", "text": "hello"})
        sim.run_until_idle()
        assert len(subscriber.deliveries) == 1

    def test_publish_while_disconnected_fails_gracefully(self):
        sim, space, system = build_system()
        client = system.add_mobile_client("alice")
        assert client.publish({"service": "chat"}) is None
        assert client.publish_failures == 1

    def test_subscribe_after_attach_propagates_to_shadows(self):
        sim, space, system = build_system()
        client = system.add_mobile_client("alice")
        system.attach(client, location=space.locations[0])
        sim.run_until_idle()
        client.subscribe_location(location_dependent({"service": "restaurant-menu"}))
        sim.run_until_idle()
        shadow = system.replicators["B2"].virtual_clients["alice"]
        assert any(
            template.static_filter.matches({"service": "restaurant-menu"})
            for template in shadow.templates.values()
        )

    def test_unsubscribe_propagates_to_shadows(self):
        sim, space, system = build_system()
        client = system.add_mobile_client("alice")
        template_id = client.subscribe_location(location_dependent({"service": "temperature"}))
        system.attach(client, location=space.locations[0])
        sim.run_until_idle()
        client.unsubscribe_location(template_id)
        sim.run_until_idle()
        shadow = system.replicators["B2"].virtual_clients["alice"]
        assert shadow.templates == {}

    def test_within_broker_move_is_pure_logical_mobility(self):
        sim, space, system = build_system()
        publish_all = deploy_sensors(system, space)
        client = system.add_mobile_client("alice")
        client.subscribe_location(location_dependent({"service": "temperature"}))
        rooms = space.locations
        system.attach(client, location=rooms[0])
        sim.run_until_idle()
        control_before = system.control_message_count()
        system.move(client, rooms[1])  # same broker (3 rooms per broker)
        sim.run_until_idle()
        publish_all()
        sim.run_until_idle()
        live_locations = [d.notification["location"] for d in client.deliveries if not d.replayed]
        assert rooms[1] in live_locations
        # no handover, so no new replication control traffic
        assert system.control_message_count() == control_before


class TestClientHandover:
    def test_cross_broker_move_replays_buffered_notifications(self):
        sim, space, system = build_system()
        publish_all = deploy_sensors(system, space)
        client = system.add_mobile_client("alice")
        client.subscribe_location(location_dependent({"service": "temperature"}))
        rooms = space.locations
        system.attach(client, location=rooms[0])
        sim.run_until_idle()
        publish_all()  # buffered by the shadow at B2 for rooms 3..5
        sim.run_until_idle()
        system.move(client, rooms[3])  # B1 -> B2
        sim.run_until_idle()
        replayed = [d.notification["location"] for d in client.deliveries if d.replayed]
        assert rooms[3] in replayed

    def test_shadow_set_reconfigured_after_handover(self):
        sim, space, system = build_system()
        client = system.add_mobile_client("alice")
        client.subscribe_location(location_dependent({"service": "temperature"}))
        rooms = space.locations
        system.attach(client, location=rooms[0])
        sim.run_until_idle()
        system.move(client, rooms[3])  # now at B2; nlb(B2) = {B1, B3}
        sim.run_until_idle()
        hosting = sorted(system.shadow_map().keys())
        assert hosting == ["B1", "B2", "B3"]
        assert system.replicators["B2"].virtual_clients["alice"].is_active
        system.move(client, rooms[6])  # now at B3; nlb(B3) = {B2, B4}
        sim.run_until_idle()
        hosting = sorted(system.shadow_map().keys())
        assert hosting == ["B2", "B3", "B4"]
        assert "alice" not in system.replicators["B1"].virtual_clients

    def test_plain_subscription_survives_handover_without_loss(self):
        sim, space, system = build_system()
        ticker = system.add_static_client("ticker", "B1")
        client = system.add_mobile_client("alice")
        client.subscribe(Filter([Equals("service", "stock")]))
        rooms = space.locations
        system.attach(client, location=rooms[0])
        sim.run_until_idle()
        published = [ticker.publish({"service": "stock", "seq": i}) for i in range(3)]
        sim.run_until_idle()
        system.detach(client)
        # quotes published while disconnected are buffered at the old broker
        published += [ticker.publish({"service": "stock", "seq": i}) for i in range(3, 6)]
        sim.run_until_idle()
        system.attach(client, location=rooms[6])  # reconnect two brokers away
        sim.run_until_idle()
        published += [ticker.publish({"service": "stock", "seq": i}) for i in range(6, 9)]
        sim.run_until_idle()
        received = sorted(d.notification["seq"] for d in client.deliveries)
        assert received == list(range(9))
        assert client.duplicate_deliveries() == 0

    def test_handover_records_predictor_observation(self):
        config = MobilitySystemConfig(predictor="markov")
        sim, space, system = build_system(config=config)
        client = system.add_mobile_client("alice")
        client.subscribe_location(location_dependent({"service": "temperature"}))
        rooms = space.locations
        system.attach(client, location=rooms[0])
        sim.run_until_idle()
        system.move(client, rooms[3])
        sim.run_until_idle()
        assert system.predictor.transition_probability("B1", "B2") > 0


class TestClientRemoval:
    def test_shutdown_garbage_collects_all_virtual_clients(self):
        sim, space, system = build_system()
        client = system.add_mobile_client("alice")
        client.subscribe_location(location_dependent({"service": "temperature"}))
        system.attach(client, location=space.locations[0])
        sim.run_until_idle()
        assert system.total_virtual_clients() == 2
        system.remove_client(client)
        sim.run_until_idle()
        assert system.total_virtual_clients() == 0
        assert not client.connected
        # all routing state for alice is gone
        for broker in system.network.brokers.values():
            assert not any("alice" in sub_id for sub_id in broker.routing_table.subscription_ids())

    def test_shadow_delete_never_removes_active_client(self):
        sim, space, system = build_system()
        alice = system.add_mobile_client("alice")
        alice.subscribe_location(location_dependent({"service": "temperature"}))
        system.attach(alice, location=space.locations[0])
        sim.run_until_idle()
        from repro.net.process import Message

        replicator = system.replicators["B1"]
        replicator.deliver(Message(kind=SHADOW_DELETE, payload={"client_id": "alice"}, sender="R@B2"))
        assert "alice" in replicator.virtual_clients


class TestBaselines:
    def test_reactive_config_creates_no_shadows(self):
        config = MobilitySystemConfig(
            replicator=ReplicatorConfig(pre_subscription=False, physical_relocation=False, exception_mode=False),
            predictor="none",
        )
        sim, space, system = build_system(config=config)
        client = system.add_mobile_client("alice")
        client.subscribe_location(location_dependent({"service": "temperature"}))
        system.attach(client, location=space.locations[0])
        sim.run_until_idle()
        assert system.total_shadow_count() == 0
        system.move(client, space.locations[3])
        sim.run_until_idle()
        # the stale virtual client at the previous broker is garbage collected
        assert "alice" not in system.replicators["B1"].virtual_clients

    def test_no_reissue_client_loses_interest_after_handover(self):
        config = MobilitySystemConfig(
            replicator=ReplicatorConfig(pre_subscription=False, physical_relocation=False, exception_mode=False),
            predictor="none",
        )
        sim, space, system = build_system(config=config)
        publish_all = deploy_sensors(system, space)
        client = system.add_mobile_client("alice", reissue_on_attach=False)
        client.subscribe_location(location_dependent({"service": "temperature"}))
        rooms = space.locations
        system.attach(client, location=rooms[0])
        sim.run_until_idle()
        publish_all()
        sim.run_until_idle()
        before = len(client.deliveries)
        assert before >= 1  # the first attachment did announce the subscription
        system.move(client, rooms[3])
        sim.run_until_idle()
        publish_all()
        sim.run_until_idle()
        assert len([d for d in client.deliveries if not d.replayed]) == before

    def test_flooding_predictor_places_shadows_everywhere(self):
        config = MobilitySystemConfig(predictor="flooding")
        sim, space, system = build_system(config=config)
        client = system.add_mobile_client("alice")
        client.subscribe_location(location_dependent({"service": "temperature"}))
        system.attach(client, location=space.locations[0])
        sim.run_until_idle()
        assert system.total_virtual_clients() == len(system.network.broker_names())
