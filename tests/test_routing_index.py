"""Brute-force vs indexed routing-table equivalence.

The indexed matcher is a pure candidate pre-selection: on any workload —
including subscription churn, replacements and link removals — its
forwarding decisions must be identical to brute force.  These tests drive
randomized workloads through both matchers side by side and assert equality
at every step, at the table level and end-to-end through a broker network.
"""

from __future__ import annotations

import random

import pytest

from repro.net.simulator import Simulator
from repro.pubsub.broker_network import random_tree_topology
from repro.pubsub.filters import (
    Equals,
    Filter,
    InSet,
    NotEquals,
    Prefix,
    Range,
    match_all,
)
from repro.pubsub.notification import Notification
from repro.pubsub.routing_table import RoutingTable

SERVICES = ["temperature", "stock", "news", "traffic"]
LOCATIONS = ["r1", "r2", "r3", "r4", "r5"]


def random_filter(rng: random.Random) -> Filter:
    """A random filter; roughly half get an indexable equality constraint."""
    roll = rng.random()
    if roll < 0.05:
        return match_all()
    constraints = []
    if roll < 0.55:
        constraints.append(Equals("service", rng.choice(SERVICES)))
    elif roll < 0.65:
        # single-value InSet: indexable through the other code path
        constraints.append(InSet("service", [rng.choice(SERVICES)]))
    elif roll < 0.75:
        constraints.append(InSet("location", rng.sample(LOCATIONS, rng.randint(2, 3))))
    elif roll < 0.85:
        constraints.append(Prefix("service", rng.choice(["t", "s", "ne"])))
    elif roll < 0.90:
        constraints.append(NotEquals("service", rng.choice(SERVICES)))
    elif roll < 0.95:
        # range-only: indexed through the per-attribute segment buckets
        low = rng.randint(0, 30)
        return Filter([Range("value", low, low + rng.randint(0, 20))])
    else:
        # unhashable equality value: must fall back to the unindexed path
        constraints.append(Equals("tags", ["a", "b"]))
    if rng.random() < 0.5:
        low = rng.randint(0, 30)
        constraints.append(Range("value", low, low + rng.randint(0, 20)))
    return Filter(constraints)


def random_notification(rng: random.Random) -> Notification:
    attrs = {
        "service": rng.choice(SERVICES),
        "location": rng.choice(LOCATIONS),
        "value": rng.randint(0, 50),
    }
    if rng.random() < 0.1:
        attrs["tags"] = ["a", "b"]  # unhashable attribute value
    return Notification(attrs)


def assert_tables_agree(brute: RoutingTable, indexed: RoutingTable, rng: random.Random, rounds: int = 20):
    links = brute.links()
    for _ in range(rounds):
        n = random_notification(rng)
        exclude = rng.sample(links, min(len(links), rng.randint(0, 2))) if links else []
        assert brute.destinations(n, exclude=exclude) == indexed.destinations(n, exclude=exclude)
        brute_entries = {(e.sub_id, e.link) for e in brute.matching_entries(n, exclude=exclude)}
        indexed_entries = {(e.sub_id, e.link) for e in indexed.matching_entries(n, exclude=exclude)}
        assert brute_entries == indexed_entries


class TestTableLevelEquivalence:
    @pytest.mark.parametrize("seed", range(5))
    def test_randomized_churn(self, seed):
        """add / replace / remove / remove_link churn keeps both matchers identical."""
        rng = random.Random(seed)
        brute = RoutingTable(matcher="brute")
        indexed = RoutingTable(matcher="indexed")
        live_subs = []
        for step in range(300):
            op = rng.random()
            if op < 0.6 or not live_subs:
                sub_id = f"s{step}" if op < 0.5 or not live_subs else rng.choice(live_subs)
                link = f"L{rng.randint(1, 6)}"
                f = random_filter(rng)
                brute.add(f, link, sub_id)
                indexed.add(f, link, sub_id)
                if sub_id not in live_subs:
                    live_subs.append(sub_id)
            elif op < 0.85:
                sub_id = rng.choice(live_subs)
                link = f"L{rng.randint(1, 6)}" if rng.random() < 0.5 else None
                brute.remove(sub_id, link=link)
                indexed.remove(sub_id, link=link)
                if not brute.has_subscription(sub_id):
                    live_subs.remove(sub_id)
            else:
                link = f"L{rng.randint(1, 6)}"
                removed_b = {(e.sub_id, e.link) for e in brute.remove_link(link)}
                removed_i = {(e.sub_id, e.link) for e in indexed.remove_link(link)}
                assert removed_b == removed_i
                live_subs = [s for s in live_subs if brute.has_subscription(s)]
            if step % 25 == 0:
                assert len(brute) == len(indexed)
                assert_tables_agree(brute, indexed, rng, rounds=5)
        assert_tables_agree(brute, indexed, rng, rounds=40)

    def test_set_matcher_rebuilds_index(self):
        rng = random.Random(7)
        table = RoutingTable(matcher="brute")
        reference = RoutingTable(matcher="brute")
        for i in range(120):
            f = random_filter(rng)
            link = f"L{i % 5}"
            table.add(f, link, f"s{i}")
            reference.add(f, link, f"s{i}")
        table.set_matcher("indexed")
        assert table.matcher == "indexed"
        assert_tables_agree(reference, table, rng, rounds=30)
        # switching back drops the index but keeps the same results
        table.set_matcher("brute")
        assert_tables_agree(reference, table, rng, rounds=10)

    def test_clear_resets_index(self):
        table = RoutingTable(matcher="indexed")
        table.add(Filter([Equals("service", "stock")]), "L1", "s1")
        table.clear()
        assert table.destinations({"service": "stock"}) == []
        table.add(Filter([Equals("service", "stock")]), "L1", "s2")
        assert table.destinations({"service": "stock"}) == ["L1"]

    def test_replace_same_sub_same_link_updates_index(self):
        table = RoutingTable(matcher="indexed")
        table.add(Filter([Equals("service", "t")]), "L1", "s1")
        table.add(Filter([Equals("service", "stock")]), "L1", "s1")
        assert table.destinations({"service": "t"}) == []
        assert table.destinations({"service": "stock"}) == ["L1"]

    def test_unknown_matcher_rejected(self):
        with pytest.raises(ValueError):
            RoutingTable(matcher="magic")
        with pytest.raises(ValueError):
            RoutingTable().set_matcher("magic")


def _deliveries(matcher: str, seed: int):
    """Run a randomized pub/sub workload; return {subscriber: sorted notification ids}."""
    rng = random.Random(seed)
    sim = Simulator()
    network = random_tree_topology(sim, 6, seed=seed, matcher=matcher)
    brokers = network.broker_names()
    subscribers = []
    for i in range(12):
        client = network.add_client(f"sub-{i}", rng.choice(brokers))
        client.subscribe(random_filter(rng))
        subscribers.append(client)
    sim.run_until_idle()
    publisher = network.add_client("pub", rng.choice(brokers))
    for i in range(40):
        publisher.publish(Notification(dict(random_notification(rng)), notification_id=1000 + i))
    sim.run_until_idle()
    return {
        client.name: sorted(d.notification.notification_id for d in client.deliveries)
        for client in subscribers
    }


class TestEndToEndEquivalence:
    """The acceptance cross-check: identical delivery sets, brute vs indexed."""

    @pytest.mark.parametrize("seed", range(4))
    def test_identical_delivery_sets(self, seed):
        assert _deliveries("brute", seed) == _deliveries("indexed", seed)


class TestMiddlewareMatcherConfig:
    def test_config_none_keeps_network_choice(self):
        from repro.core.location import LocationSpace
        from repro.core.middleware import MobilePubSub, MobilitySystemConfig
        from repro.pubsub.broker_network import line_topology

        sim = Simulator()
        net = line_topology(sim, 2, matcher="brute")
        space = LocationSpace({"r1": "B1", "r2": "B2"})
        MobilePubSub(sim, net, space, config=MobilitySystemConfig())
        assert all(b.matcher == "brute" for b in net.brokers.values())

    def test_config_overrides_when_explicit(self):
        from repro.core.location import LocationSpace
        from repro.core.middleware import MobilePubSub, MobilitySystemConfig
        from repro.pubsub.broker_network import line_topology

        sim = Simulator()
        net = line_topology(sim, 2, matcher="brute")
        space = LocationSpace({"r1": "B1", "r2": "B2"})
        MobilePubSub(sim, net, space, config=MobilitySystemConfig(matcher="indexed"))
        assert all(b.matcher == "indexed" for b in net.brokers.values())
