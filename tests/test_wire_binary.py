"""Binary wire codec: round-trips, codec negotiation, and batched framing.

Four concerns, matching what swapping the socket backends onto the binary
codec demands:

1. **Round-trips under both codecs** — every payload type in the closed wire
   set must satisfy encode → decode → encode *byte equality* under the JSON
   reference codec and the binary codec, and a binary round-trip must decode
   to a byte-identical JSON re-encoding (JSON stays the golden-trace
   reference, so the binary codec may never lose information it pins);
2. **Determinism across hash seeds** — the binary bytes must not depend on
   ``PYTHONHASHSEED`` any more than the JSON bytes do (subprocess
   cross-check, same pattern as the mobility wire tests);
3. **Loud codec negotiation** — a codec, wire-revision or string-table skew
   fails at the handshake (:class:`CodecMismatchError`, distinct from the
   :class:`WireError` raised for truncation), an armed
   :class:`FrameDecoder` rejects foreign frames, and an out-of-range
   string-table reference is rejected instead of silently misread;
4. **Batched framing boundaries** — a dispatch burst exactly at, one byte
   over, and one byte under the asyncio flush cap must flush (or defer)
   correctly and deliver every message intact.
"""

import hashlib
import os
import socket
import struct
import subprocess
import sys
from pathlib import Path

import pytest

import repro.net.wire as wire
from repro.net.process import Message, Process
from repro.net.transport import AsyncioTransport
from repro.net.wire import (
    BINARY_CODEC,
    JSON_CODEC,
    CodecMismatchError,
    FrameDecoder,
    WireError,
    check_handshake_codec,
    decode_message,
    decode_message_binary,
    encode_message,
    encode_message_binary,
    frame,
    frame_message_binary,
    handshake_fields,
)
from repro.pubsub.filters import (
    Equals,
    Exists,
    Filter,
    InSet,
    NotEquals,
    Prefix,
    Range,
)
from repro.pubsub.notification import Notification
from repro.pubsub.subscription import Subscription

sys.path.insert(0, str(Path(__file__).resolve().parent))
from test_wire_mobility import _sample_payloads  # noqa: E402


def _all_payloads():
    """Every payload type the wire set is closed over.

    The mobility control payloads (hello, templates, handover request/reply,
    stats, templated subscriptions) come from the PR-5 sample set; the rest
    covers notifications with every attribute value type, every constraint
    kind, plain subscriptions, and the tagged containers.
    """
    payloads = dict(_sample_payloads())
    payloads["notification"] = Notification(
        {
            "topic": "t",
            "value": 21.5,
            "seq": 3,
            "neg": -7,
            "wide": 2**40,
            "big": -(2**80),
            "flag": True,
            "off": False,
            "none": None,
            "text": "héllo ✓",
            "pad": "x" * 300,
        },
        published_at=1.5,
        publisher="p",
        notification_id=9,
    )
    payloads["every_constraint_filter"] = Filter(
        [
            Exists("service"),
            Equals("room", "r4"),
            NotEquals("state", "off"),
            InSet("zone", {"a", "b", "c"}),
            Range("value", 0, 100, include_low=False),
            Prefix("name", "temp-"),
        ]
    )
    payloads["half_open_range"] = Filter([Range("value", low=10)])
    payloads["plain_subscription"] = Subscription(
        sub_id="s2", filter=Filter([Equals("a", 1)]), subscriber="c", meta={"app": "demo"}
    )
    payloads["containers"] = {
        "list": [1, 2.5, "x", None, True],
        "tuple": (1, "a"),
        "set": {3, 1, 2},
        "frozenset": frozenset({"a", "b"}),
        "nested": {"deep": [{"k": (False,)}]},
    }
    payloads["unsubscribe"] = {"sub_id": "s9", "filter": Filter([Equals("service", "x")])}
    return payloads


_CODECS = {"json": JSON_CODEC, "binary": BINARY_CODEC}


def _canonical_bytes(codec_name: str) -> bytes:
    encode = _CODECS[codec_name].encode_message
    chunks = []
    for name, payload in sorted(_all_payloads().items()):
        chunks.append(encode(Message(kind=name, payload=payload, sender="x", msg_id=1)))
    return b"".join(chunks)


# ----------------------------------------------------------------- round-trips


class TestRoundTripsUnderBothCodecs:
    @pytest.mark.parametrize("name", sorted(_all_payloads()))
    @pytest.mark.parametrize("codec_name", ["json", "binary"])
    def test_encode_decode_encode_byte_equality(self, codec_name, name):
        codec = _CODECS[codec_name]
        payload = _all_payloads()[name]
        first = codec.encode_message(Message(kind=name, payload=payload, sender="x", msg_id=1))
        decoded = codec.decode_message(first)
        second = codec.encode_message(
            Message(kind=name, payload=decoded.payload, sender="x", msg_id=1)
        )
        assert first == second

    @pytest.mark.parametrize("name", sorted(_all_payloads()))
    def test_binary_roundtrip_decodes_to_byte_identical_json_reencoding(self, name):
        # the acceptance bar for keeping JSON as the golden-trace reference:
        # whatever crosses the wire in binary re-encodes to the exact JSON
        # bytes the reference codec would have produced
        payload = _all_payloads()[name]
        message = Message(kind=name, payload=payload, sender="x", msg_id=1)
        reference = encode_message(message)
        decoded = decode_message_binary(encode_message_binary(message))
        assert encode_message(decoded) == reference

    def test_frame_message_binary_matches_frame_of_encode(self):
        # the single-buffer sender fast path must be byte-identical to the
        # compositional framing it shortcuts
        for name, payload in sorted(_all_payloads().items()):
            message = Message(kind=name, payload=payload, sender="x", msg_id=1)
            assert frame_message_binary(message) == frame(encode_message_binary(message))

    def test_binary_envelope_fields_survive(self):
        message = Message(
            kind="notify",
            payload=_all_payloads()["notification"],
            sender="B1",
            msg_id=12345,
            meta={"hops": 2, "sub": "s1"},
        )
        decoded = decode_message_binary(encode_message_binary(message))
        assert decoded.kind == "notify"
        assert decoded.sender == "B1"
        assert decoded.msg_id == 12345
        assert decoded.meta == {"hops": 2, "sub": "s1"}
        assert decoded.payload == message.payload


class TestHashSeedDeterminism:
    def test_both_codecs_identical_under_two_hash_seeds(self):
        """Encode the payload set under PYTHONHASHSEED=0 and =1; digests must match."""
        digests = {}
        for seed in ("0", "1"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = seed
            src = str(Path(wire.__file__).resolve().parents[2])
            env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
            script = (
                "import sys; sys.path.insert(0, 'tests');"
                "import hashlib, test_wire_binary as t;"
                "print(hashlib.sha256(t._canonical_bytes('json')).hexdigest(),"
                " hashlib.sha256(t._canonical_bytes('binary')).hexdigest())"
            )
            output = subprocess.run(
                [sys.executable, "-c", script],
                env=env,
                cwd=str(Path(__file__).resolve().parents[1]),
                capture_output=True,
                text=True,
                check=True,
            )
            digests[seed] = output.stdout.split()
        assert digests["0"] == digests["1"]
        # and the parent process (whatever its seed) agrees too
        assert [
            hashlib.sha256(_canonical_bytes("json")).hexdigest(),
            hashlib.sha256(_canonical_bytes("binary")).hexdigest(),
        ] == digests["0"]


# ----------------------------------------------------- loud codec negotiation


class TestCodecMismatchIsDistinctFromTruncation:
    def test_json_decoder_names_a_binary_body(self):
        body = encode_message_binary(Message(kind="x", payload=1, msg_id=1))
        with pytest.raises(CodecMismatchError, match="binary frame on a JSON-codec"):
            decode_message(body)

    def test_binary_decoder_names_a_json_body(self):
        body = encode_message(Message(kind="x", payload=1, msg_id=1))
        with pytest.raises(CodecMismatchError, match="JSON frame on a binary-codec"):
            decode_message_binary(body)

    def test_binary_decoder_names_an_unknown_wire_version(self):
        with pytest.raises(CodecMismatchError, match="version"):
            decode_message_binary(bytes([wire.BINARY_VERSION + 1, 0x00]))

    def test_truncation_is_a_plain_wire_error(self):
        # a truncated binary body is corruption, not negotiation failure:
        # it must NOT be reported as a codec mismatch
        body = encode_message_binary(Message(kind="x", payload="y" * 50, msg_id=1))
        with pytest.raises(WireError) as excinfo:
            decode_message_binary(body[:10])
        assert not isinstance(excinfo.value, CodecMismatchError)

    def test_armed_decoder_rejects_foreign_frames(self):
        json_frame = JSON_CODEC.frame_message(Message(kind="x", payload=1, msg_id=1))
        binary_frame = frame_message_binary(Message(kind="x", payload=1, msg_id=1))
        with pytest.raises(CodecMismatchError, match="negotiated the 'binary' codec"):
            FrameDecoder(codec="binary").feed(json_frame)
        with pytest.raises(CodecMismatchError, match="negotiated the 'json' codec"):
            FrameDecoder(codec="json").feed(binary_frame)

    def test_armed_decoder_still_buffers_partial_frames_silently(self):
        # truncation (an incomplete frame) is not a mismatch: the armed
        # decoder must keep buffering, and only a *complete* foreign body
        # raises
        decoder = FrameDecoder(codec="binary")
        binary_frame = frame_message_binary(Message(kind="x", payload="z" * 20, msg_id=1))
        assert decoder.feed(binary_frame[:7]) == []
        assert decoder.pending_bytes == 7
        (body,) = decoder.feed(binary_frame[7:])
        assert decode_message_binary(body).payload == "z" * 20

    def test_armed_decoder_oversize_is_a_plain_wire_error(self):
        decoder = FrameDecoder(codec="binary")
        with pytest.raises(WireError) as excinfo:
            decoder.feed(struct.pack(">I", wire.MAX_FRAME_SIZE + 1))
        assert not isinstance(excinfo.value, CodecMismatchError)


class TestHandshakeVersionNegotiation:
    def test_codec_name_mismatch_rejected(self):
        with pytest.raises(CodecMismatchError, match="peer negotiated codec 'binary'"):
            check_handshake_codec(handshake_fields(BINARY_CODEC), JSON_CODEC)
        with pytest.raises(CodecMismatchError, match="peer negotiated codec 'json'"):
            check_handshake_codec(handshake_fields(JSON_CODEC), BINARY_CODEC)

    def test_matching_handshakes_accepted(self):
        check_handshake_codec(handshake_fields(JSON_CODEC), JSON_CODEC)
        check_handshake_codec(handshake_fields(BINARY_CODEC), BINARY_CODEC)

    def test_pre_codec_handshake_is_treated_as_json(self):
        check_handshake_codec({"peer": "B1"}, JSON_CODEC)
        with pytest.raises(CodecMismatchError):
            check_handshake_codec({"peer": "B1"}, BINARY_CODEC)

    def test_binary_wire_revision_skew_rejected(self):
        fields = handshake_fields(BINARY_CODEC)
        fields["wire"] = wire.WIRE_VERSION + 1
        with pytest.raises(CodecMismatchError, match="wire revision"):
            check_handshake_codec(fields, BINARY_CODEC)

    def test_binary_string_table_skew_rejected(self):
        fields = handshake_fields(BINARY_CODEC)
        fields["table"] = wire._TABLE_LEN + 1
        with pytest.raises(CodecMismatchError, match="string table"):
            check_handshake_codec(fields, BINARY_CODEC)


class TestStringTableHardening:
    def test_last_table_entry_is_readable(self):
        buf = bytes([wire._B_SREF, wire._TABLE_LEN - 1])
        value, pos = wire._b_read(buf, 0)
        assert value == wire.STRING_TABLE[-1] and pos == 2

    def test_out_of_range_index_rejected(self):
        body = bytes([wire.BINARY_VERSION, wire._B_SREF, wire._TABLE_LEN])
        with pytest.raises(WireError, match="out of range"):
            decode_message_binary(body)

    def test_out_of_range_index_rejected_inside_notification_attrs(self):
        # the notification decode inlines its attrs-dict read; the bounds
        # check must hold on that fast path too, not only in the generic
        # reader
        body = bytearray([wire.BINARY_VERSION, wire._B_MESSAGE])
        wire._w_str(body, "notify")
        body += bytes([wire._B_NOTIFICATION, wire._B_DICT, 1, wire._B_SREF, 254])
        with pytest.raises(WireError, match="out of range"):
            decode_message_binary(bytes(body))


class TestMixedCodecHandshakeOverSockets:
    @pytest.mark.parametrize("server_codec,client_codec", [("json", "binary"), ("binary", "json")])
    def test_foreign_codec_client_fails_loudly(self, server_codec, client_codec):
        """A client that negotiated the other codec is rejected at the
        handshake — surfacing CodecMismatchError to the driver instead of
        feeding garbage frames to the decoder later."""
        transport = AsyncioTransport(codec=server_codec)
        try:
            a = Recorder(transport.clock, "a")
            b = Recorder(transport.clock, "b")
            transport.make_link(a, b, latency=0.0)
            host, port = transport._addresses["b"]
            handshake = {
                "link": 999,
                "source": "z",
                "target": "b",
                **handshake_fields(_CODECS[client_codec]),
            }
            with socket.create_connection((host, port)) as raw:
                raw.sendall(frame(wire.encode_control(handshake)))
                with pytest.raises(CodecMismatchError):
                    transport.run_until_idle()
        finally:
            transport.close()


# ------------------------------------------------------ batched-frame boundary


class Recorder(Process):
    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.received = []

    def on_message(self, message):
        self.received.append(message)


@pytest.fixture
def binary_pair():
    transport = AsyncioTransport(codec="binary")
    a = Recorder(transport.clock, "a")
    b = Recorder(transport.clock, "b")
    link = transport.make_link(a, b, latency=0.0)
    yield transport, a, b, link
    transport.close()


class TestBatchedFrameBoundary:
    """A send burst against the flush cap: at the cap and one byte over must
    flush immediately; one byte under must stay buffered until the event
    loop spins.  Every case must deliver all messages intact."""

    def _burst(self, transport):
        # two equal-sized messages with pinned msg_ids, so the framed burst
        # size is exact and reproducible
        messages = [
            Message("burst", payload="a" * 32, msg_id=1),
            Message("burst", payload="b" * 32, msg_id=2),
        ]
        total = 0
        for message in messages:
            probe = Message(
                message.kind, payload=message.payload, sender="a", msg_id=message.msg_id
            )
            total += len(transport.codec.frame_message(probe))
        return messages, total

    def test_burst_exactly_at_cap_flushes_immediately(self, binary_pair):
        transport, a, b, link = binary_pair
        messages, total = self._burst(transport)
        transport.FLUSH_CAP = total
        a.send_many("b", messages)
        endpoint = link._a_to_b
        assert len(endpoint._buffer) == 0, "a burst at the cap must flush synchronously"
        assert endpoint not in transport._dirty
        transport.run_until_idle()
        assert [m.payload for m in b.received] == ["a" * 32, "b" * 32]

    def test_burst_one_byte_over_cap_flushes_immediately(self, binary_pair):
        transport, a, b, link = binary_pair
        messages, total = self._burst(transport)
        transport.FLUSH_CAP = total - 1
        a.send_many("b", messages)
        endpoint = link._a_to_b
        assert len(endpoint._buffer) == 0, "a burst over the cap must flush synchronously"
        assert endpoint not in transport._dirty
        transport.run_until_idle()
        assert [m.payload for m in b.received] == ["a" * 32, "b" * 32]

    def test_burst_one_byte_under_cap_defers_to_the_loop(self, binary_pair):
        transport, a, b, link = binary_pair
        messages, total = self._burst(transport)
        transport.FLUSH_CAP = total + 1
        a.send_many("b", messages)
        endpoint = link._a_to_b
        assert len(endpoint._buffer) == total, "an under-cap burst must buffer"
        assert endpoint in transport._dirty
        assert b.received == []
        transport.run_until_idle()
        assert len(endpoint._buffer) == 0
        assert [m.payload for m in b.received] == ["a" * 32, "b" * 32]

    def test_sequential_sends_cross_the_cap_mid_burst(self, binary_pair):
        # the cap check runs per _send_frames call: the send that crosses
        # the cap flushes everything buffered so far, frames never split
        transport, a, b, link = binary_pair
        messages, total = self._burst(transport)
        transport.FLUSH_CAP = total
        first, second = messages
        a.send("b", first)
        endpoint = link._a_to_b
        assert len(endpoint._buffer) > 0 and endpoint in transport._dirty
        a.send("b", second)
        assert len(endpoint._buffer) == 0 and endpoint not in transport._dirty
        transport.run_until_idle()
        assert [m.payload for m in b.received] == ["a" * 32, "b" * 32]

    def test_json_codec_never_buffers(self):
        transport = AsyncioTransport(codec="json")
        try:
            a = Recorder(transport.clock, "a")
            b = Recorder(transport.clock, "b")
            link = transport.make_link(a, b, latency=0.0)
            a.send_many("b", [Message("x", payload=1), Message("x", payload=2)])
            assert len(link._a_to_b._buffer) == 0
            assert not transport._dirty
            transport.run_until_idle()
            assert [m.payload for m in b.received] == [1, 2]
        finally:
            transport.close()
