"""Additional coverage for smaller behaviours across the stack."""

import pytest

from repro.core.location import office_floor_space
from repro.core.location_filter import location_dependent
from repro.core.middleware import MobilePubSub, MobilitySystemConfig
from repro.core.replicator import ReplicatorConfig
from repro.net.process import Message
from repro.net.simulator import Simulator
from repro.pubsub.broker_network import line_topology
from repro.pubsub.filters import Equals, Filter
from repro.pubsub.notification import Notification


class TestBrokerExtras:
    def test_duplicate_suppression_when_enabled(self):
        sim = Simulator()
        network = line_topology(sim, 2)
        broker = network.brokers["B1"]
        broker.deduplicate = True
        subscriber = network.add_client("sub", "B2")
        subscriber.subscribe(Filter([Equals("service", "t")]))
        sim.run_until_idle()
        notification = Notification({"service": "t"})
        publisher = network.add_client("pub", "B1")
        sim.run_until_idle()
        # deliver the *same* notification object twice straight to the broker
        publisher.send("B1", Message(kind="publish", payload=notification))
        publisher.send("B1", Message(kind="publish", payload=notification))
        sim.run_until_idle()
        assert broker.duplicate_publishes_dropped == 1
        assert len(subscriber.deliveries) == 1

    def test_unknown_message_kind_ignored(self):
        sim = Simulator()
        network = line_topology(sim, 2)
        client = network.add_client("c", "B1")
        client.send("B1", Message(kind="mystery", payload=None))
        sim.run_until_idle()  # must not raise
        assert network.brokers["B1"].messages_received == 1

    def test_broker_network_run_passthrough(self):
        sim = Simulator()
        network = line_topology(sim, 2)
        sim.schedule(5.0, lambda: None)
        assert network.run(until=2.0) == 2.0


class TestMiddlewareExtras:
    @pytest.fixture
    def system(self):
        sim = Simulator()
        space = office_floor_space(n_rooms=4, rooms_per_broker=2)
        network = line_topology(sim, 2)
        return sim, space, MobilePubSub(sim, network, space)

    def test_replicator_lookup_by_location_and_broker(self, system):
        _sim, space, system = system
        room = space.locations[0]
        assert system.replicator_for_location(room) is system.replicator_for_broker(space.broker_of(room))

    def test_attach_requires_location_or_broker(self, system):
        _sim, _space, system = system
        client = system.add_mobile_client("alice")
        with pytest.raises(ValueError):
            system.attach(client)

    def test_attach_by_broker_directly(self, system):
        sim, _space, system = system
        client = system.add_mobile_client("alice")
        system.attach(client, broker="B2")
        sim.run_until_idle()
        assert client.current_broker == "B2"

    def test_power_cycle_round_trip(self, system):
        sim, space, system = system
        client = system.add_mobile_client("alice")
        client.subscribe_location(location_dependent({"service": "temperature"}))
        system.attach(client, location=space.locations[0])
        sim.run_until_idle()
        system.power_off(client)
        assert not client.connected
        system.power_on(client, space.locations[3])
        sim.run_until_idle()
        assert client.connected
        assert client.current_broker == space.broker_of(space.locations[3])

    def test_unknown_predictor_spec_rejected(self):
        sim = Simulator()
        space = office_floor_space(n_rooms=2, rooms_per_broker=1)
        network = line_topology(sim, 2)
        with pytest.raises(ValueError):
            MobilePubSub(sim, network, space, config=MobilitySystemConfig(predictor="psychic"))

    def test_predictor_object_passthrough(self):
        from repro.core.uncertainty import NoPredictionPredictor

        sim = Simulator()
        space = office_floor_space(n_rooms=2, rooms_per_broker=1)
        network = line_topology(sim, 2)
        predictor = NoPredictionPredictor()
        system = MobilePubSub(
            sim, network, space, config=MobilitySystemConfig(predictor=predictor)
        )
        assert system.predictor is predictor

    def test_move_to_same_location_keeps_connection(self, system):
        sim, space, system = system
        client = system.add_mobile_client("alice")
        system.attach(client, location=space.locations[0])
        sim.run_until_idle()
        attachments_before = len(client.attachments)
        system.move(client, space.locations[1])  # same broker
        sim.run_until_idle()
        assert len(client.attachments) == attachments_before
        assert client.connected

    def test_shared_store_config_builds_stores(self):
        sim = Simulator()
        space = office_floor_space(n_rooms=2, rooms_per_broker=1)
        network = line_topology(sim, 2)
        config = MobilitySystemConfig(replicator=ReplicatorConfig(use_shared_store=True))
        system = MobilePubSub(sim, network, space, config=config)
        assert all(r.shared_store is not None for r in system.replicators.values())

    def test_overhead_report_shape(self, system):
        from repro.core.metrics import overhead_report

        sim, space, system = system
        client = system.add_mobile_client("alice")
        client.subscribe_location(location_dependent({"service": "temperature"}))
        system.attach(client, location=space.locations[0])
        sim.run_until_idle()
        report = overhead_report(system)
        row = report.as_row()
        assert row["sub_msgs"] > 0
        assert row["total_msgs"] >= row["sub_msgs"]
        assert report.shadow_count == system.total_shadow_count()


class TestReplicatorEdgeCases:
    def test_location_update_for_unknown_client_is_ignored(self):
        sim = Simulator()
        space = office_floor_space(n_rooms=2, rooms_per_broker=1)
        network = line_topology(sim, 2)
        system = MobilePubSub(sim, network, space)
        replicator = system.replicators["B1"]
        replicator.deliver(
            Message(kind="location_update", payload={"client_id": "ghost", "location": space.locations[0]})
        )
        assert replicator.virtual_clients == {}

    def test_unsubscribe_for_unknown_client_is_ignored(self):
        sim = Simulator()
        space = office_floor_space(n_rooms=2, rooms_per_broker=1)
        network = line_topology(sim, 2)
        system = MobilePubSub(sim, network, space)
        replicator = system.replicators["B1"]
        replicator.deliver(
            Message(kind="client_unsubscribe", payload={"client_id": "ghost", "template_id": "x", "sub_id": None})
        )
        assert replicator.virtual_clients == {}

    def test_device_disconnect_for_unknown_client_is_ignored(self):
        sim = Simulator()
        space = office_floor_space(n_rooms=2, rooms_per_broker=1)
        network = line_topology(sim, 2)
        system = MobilePubSub(sim, network, space)
        system.replicators["B1"].device_disconnected("ghost")  # must not raise

    def test_handover_reply_for_departed_client_is_dropped(self):
        from repro.core.physical_mobility import HandoverReply

        sim = Simulator()
        space = office_floor_space(n_rooms=2, rooms_per_broker=1)
        network = line_topology(sim, 2)
        system = MobilePubSub(sim, network, space)
        replicator = system.replicators["B1"]
        reply = HandoverReply(client_id="ghost", old_broker="B2")
        replicator.deliver(Message(kind="handover_reply", payload=reply, sender="R@B2"))
        assert replicator.stats.replayed_to_device == 0
