"""Wire-codec coverage for the mobility payload types and codec hardening.

Three concerns, matching what running the replicated-handover protocol over
real sockets demands of the codec:

1. **Round-trips** — every replication control payload (client hello,
   location templates, handover request/reply, replicator stats, templated
   subscriptions) must satisfy encode → decode → encode *byte equality*;
2. **Determinism across hash seeds** — the canonical bytes must not depend
   on ``PYTHONHASHSEED`` (sets and dicts are iteration-order hazards), so a
   subprocess under a different seed must produce the identical digest;
3. **Frame-size hardening** — a corrupt length prefix must raise
   :class:`WireError` at the boundary instead of attempting a multi-GB
   allocation, on both the encode (``frame``) and decode (``FrameDecoder``)
   sides.
"""

import hashlib
import os
import struct
import subprocess
import sys
from pathlib import Path

import pytest

import repro.net.wire as wire
from repro.core.location_filter import MYLOC, location_dependent
from repro.core.physical_mobility import HandoverReply, HandoverRequest
from repro.core.replicator import ClientHello, ReplicatorStats
from repro.net.process import Message
from repro.net.wire import (
    FrameDecoder,
    WireError,
    decode_message,
    encode_message,
    frame,
)
from repro.pubsub.filters import Equals, Filter, InSet, Range
from repro.pubsub.notification import Notification
from repro.pubsub.subscription import Subscription


def _sample_template():
    return location_dependent(
        {"service": "news", "zone": {"a", "b"}, "location": MYLOC}, scope="region"
    )


def _sample_payloads():
    """The canonical payload set shared by round-trip and hash-seed tests."""
    template = _sample_template()
    hello = ClientHello(
        client_id="c1",
        location="l1",
        templates={"t1": template, "t2": location_dependent({"service": "temp"})},
        plain_filters={"p1": Filter([Equals("service", "alerts"), Range("level", 1, 5)])},
        previous_broker="B9",
        reissue=True,
    )
    reply = HandoverReply(
        client_id="c1",
        old_broker="B1",
        plain_filters={"p1": Filter([InSet("zone", {"x", "y", "z"})])},
        buffered_plain=[Notification({"v": 1}, published_at=0.5, publisher="p", notification_id=11)],
        buffered_location=[Notification({"v": 2}, notification_id=12)],
    )
    return {
        "hello": hello,
        "template": template,
        "request": HandoverRequest(client_id="c1", new_broker="B2", new_replicator="R@B2"),
        "reply": reply,
        "stats": ReplicatorStats(shadows_created=3, handovers=2, notifications_buffered=17),
        "templated_subscription": Subscription(
            sub_id="s1",
            filter=template.bind(["l1", "l2"]),
            subscriber="c1",
            location_dependent=True,
            template=template,
        ),
    }


def _canonical_bytes() -> bytes:
    chunks = []
    for name, payload in sorted(_sample_payloads().items()):
        chunks.append(encode_message(Message(kind=name, payload=payload, sender="x", msg_id=1)))
    return b"".join(chunks)


class TestReplicationPayloadRoundTrips:
    @pytest.mark.parametrize("name", sorted(_sample_payloads()))
    def test_encode_decode_encode_byte_equality(self, name):
        payload = _sample_payloads()[name]
        first = encode_message(Message(kind=name, payload=payload, sender="x", msg_id=1))
        decoded = decode_message(first)
        second = encode_message(
            Message(kind=name, payload=decoded.payload, sender="x", msg_id=1)
        )
        assert first == second

    def test_client_hello_content_survives(self):
        hello = _sample_payloads()["hello"]
        decoded = decode_message(
            encode_message(Message(kind="client_hello", payload=hello, msg_id=1))
        ).payload
        assert isinstance(decoded, ClientHello)
        assert decoded.client_id == "c1" and decoded.previous_broker == "B9"
        assert decoded.templates == hello.templates
        assert decoded.plain_filters == hello.plain_filters

    def test_handover_reply_buffers_survive(self):
        reply = _sample_payloads()["reply"]
        decoded = decode_message(
            encode_message(Message(kind="handover_reply", payload=reply, msg_id=1))
        ).payload
        assert decoded.buffered_plain == reply.buffered_plain
        assert decoded.buffered_plain[0].published_at == 0.5
        assert decoded.buffered_location == reply.buffered_location
        assert decoded.plain_filters == reply.plain_filters

    def test_templated_subscription_keeps_its_template(self):
        sub = _sample_payloads()["templated_subscription"]
        decoded = decode_message(
            encode_message(Message(kind="subscribe", payload=sub, msg_id=1))
        ).payload
        assert decoded.template == sub.template
        assert decoded.filter == sub.filter and decoded.location_dependent

    def test_replicator_stats_roundtrip(self):
        stats = _sample_payloads()["stats"]
        decoded = decode_message(
            encode_message(Message(kind="stats", payload=stats, msg_id=1))
        ).payload
        assert decoded == stats

    def test_plain_subscription_encoding_unchanged(self):
        # the "template" key only appears when a template rides along, so
        # pre-mobility encodings (and the golden traces hashing them) are
        # byte-stable
        sub = Subscription(sub_id="s1", filter=Filter([Equals("a", 1)]), subscriber="c")
        assert b'"template"' not in encode_message(Message(kind="subscribe", payload=sub, msg_id=1))

    def test_opaque_template_still_rejected(self):
        sub = Subscription(sub_id="s1", filter=Filter(()), subscriber="c", template=object())
        with pytest.raises(WireError):
            encode_message(Message(kind="subscribe", payload=sub, msg_id=1))


class TestHashSeedDeterminism:
    def test_canonical_bytes_identical_under_two_hash_seeds(self):
        """Encode the payload set under PYTHONHASHSEED=0 and =1; digests must match."""
        digests = {}
        for seed in ("0", "1"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = seed
            src = str(Path(wire.__file__).resolve().parents[2])
            env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
            script = (
                "import hashlib, tests.test_wire_mobility as t;"
                "print(hashlib.sha256(t._canonical_bytes()).hexdigest())"
            )
            output = subprocess.run(
                [sys.executable, "-c", script],
                env=env,
                cwd=str(Path(__file__).resolve().parents[1]),
                capture_output=True,
                text=True,
                check=True,
            )
            digests[seed] = output.stdout.strip()
        assert digests["0"] == digests["1"]
        # and the parent process (whatever its seed) agrees too
        assert hashlib.sha256(_canonical_bytes()).hexdigest() == digests["0"]


class TestNotificationEncodingCache:
    def test_fragment_cached_and_bytes_identical(self):
        notification = Notification({"b": 1, "a": 2.5}, published_at=1.0, publisher="p",
                                    notification_id=7)
        assert notification._wire is None
        first = encode_message(Message(kind="notify", payload=notification, sender="B1", msg_id=3))
        assert notification._wire is not None
        cached_fragment = notification._wire
        second = encode_message(Message(kind="notify", payload=notification, sender="B1", msg_id=3))
        assert first == second
        assert notification._wire is cached_fragment, "the cache must be reused, not rebuilt"

    def test_forwarded_copy_shares_the_cache(self):
        notification = Notification({"v": 9}, notification_id=21)
        message = Message(kind="notify", payload=notification, sender="B1", msg_id=1)
        encode_message(message)
        forwarded = message.copy()
        assert forwarded.payload is notification, "immutable payloads stay shared"
        assert forwarded.payload._wire is notification._wire

    def test_decode_primes_the_cache_for_the_next_hop(self):
        notification = Notification({"v": 1, "w": "x"}, published_at=2.0, publisher="p",
                                    notification_id=5)
        encoded = encode_message(Message(kind="notify", payload=notification, sender="B1", msg_id=2))
        decoded = decode_message(encoded)
        assert decoded.payload._wire is not None, "decoding must prime the fragment cache"
        re_encoded = encode_message(
            Message(kind="notify", payload=decoded.payload, sender="B1", msg_id=2)
        )
        assert re_encoded == encoded

    def test_mutation_paths_get_a_fresh_cache(self):
        notification = Notification({"v": 1}, notification_id=5)
        encode_message(Message(kind="notify", payload=notification, msg_id=1))
        mutated = notification.with_attributes(v=2)
        assert mutated._wire is None
        stamped = notification.stamped(published_at=3.0, publisher="p")
        assert stamped._wire is None
        one = encode_message(Message(kind="notify", payload=mutated, msg_id=1))
        assert one != encode_message(Message(kind="notify", payload=notification, msg_id=1))

    def test_cache_never_leaks_into_equality(self):
        plain = Notification({"v": 1}, notification_id=5)
        cached = Notification({"v": 1}, notification_id=5)
        encode_message(Message(kind="notify", payload=cached, msg_id=1))
        assert plain == cached
        assert hash(plain) == hash(cached)


class TestFrameSizeBoundary:
    def test_frame_accepts_exactly_max_and_rejects_one_more(self, monkeypatch):
        monkeypatch.setattr(wire, "MAX_FRAME_SIZE", 64)
        assert len(frame(b"x" * 64)) == 68
        with pytest.raises(WireError):
            frame(b"x" * 65)

    def test_decoder_accepts_exactly_max_length(self, monkeypatch):
        monkeypatch.setattr(wire, "MAX_FRAME_SIZE", 64)
        decoder = FrameDecoder()
        body = b"y" * 64
        assert decoder.feed(struct.pack(">I", 64) + body) == [body]

    def test_decoder_rejects_corrupt_length_without_buffering_it(self):
        # a real corrupt prefix: one byte over the actual limit.  The decoder
        # must raise from the 4 header bytes alone — before any attempt to
        # buffer (or worse, allocate) the advertised multi-MB body
        decoder = FrameDecoder()
        with pytest.raises(WireError):
            decoder.feed(struct.pack(">I", wire.MAX_FRAME_SIZE + 1))
        assert decoder.pending_bytes <= 4

    def test_decoder_boundary_split_across_feeds(self, monkeypatch):
        monkeypatch.setattr(wire, "MAX_FRAME_SIZE", 8)
        decoder = FrameDecoder()
        stream = struct.pack(">I", 8) + b"z" * 8
        assert decoder.feed(stream[:6]) == []
        assert decoder.feed(stream[6:]) == [b"z" * 8]
        with pytest.raises(WireError):
            decoder.feed(struct.pack(">I", 9))
