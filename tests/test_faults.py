"""Tests for fault injection and the system's behaviour under faults."""

import pytest

from repro.core.location_filter import location_dependent
from repro.core.middleware import MobilePubSub, MobilitySystemConfig
from repro.core.location import office_floor_space
from repro.net.faults import FaultInjector
from repro.net.link import Network
from repro.net.process import Message, Process
from repro.net.simulator import Simulator
from repro.pubsub.broker_network import line_topology
from repro.pubsub.filters import Equals, Filter
from repro.pubsub.notification import Notification


class Echo(Process):
    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.received = []

    def on_message(self, message):
        self.received.append(message)


@pytest.fixture
def small_network():
    sim = Simulator()
    network = Network(sim)
    a = network.add_process(Echo(sim, "a"))
    b = network.add_process(Echo(sim, "b"))
    c = network.add_process(Echo(sim, "c"))
    network.connect("a", "b")
    network.connect("b", "c")
    return sim, network, a, b, c


class TestFaultInjector:
    def test_link_outage_drops_then_recovers(self, small_network):
        sim, network, a, b, _c = small_network
        injector = FaultInjector(sim, network)
        injector.link_outage("a", "b", start=1.0, duration=2.0)
        sim.schedule_at(1.5, lambda: a.send("b", Message("during-outage")))
        sim.schedule_at(4.0, lambda: a.send("b", Message("after-repair")))
        sim.run_until_idle()
        kinds = [message.kind for message in b.received]
        assert kinds == ["after-repair"]
        assert injector.downtime_events() == (1, 0)
        assert len(injector.log.of_kind("link_up")) == 1

    def test_cut_link_is_permanent(self, small_network):
        sim, network, a, b, _c = small_network
        injector = FaultInjector(sim, network)
        injector.cut_link("a", "b", at=1.0)
        sim.schedule_at(2.0, lambda: a.send("b", Message("late")))
        sim.run_until_idle()
        assert b.received == []

    def test_unknown_link_or_process_rejected(self, small_network):
        sim, network, _a, _b, _c = small_network
        injector = FaultInjector(sim, network)
        with pytest.raises(KeyError):
            injector.link_outage("a", "zzz", start=1.0, duration=1.0)
        with pytest.raises(KeyError):
            injector.crash_process("zzz", at=1.0)

    def test_crash_and_restart_process(self, small_network):
        sim, network, a, b, _c = small_network
        injector = FaultInjector(sim, network)
        injector.crash_for("b", start=1.0, duration=2.0)
        sim.schedule_at(1.5, lambda: a.send("b", Message("while-down")))
        sim.schedule_at(4.0, lambda: a.send("b", Message("while-up")))
        sim.run_until_idle()
        assert [message.kind for message in b.received] == ["while-up"]
        assert injector.downtime_events() == (0, 1)

    def test_partition_disables_all_crossing_links(self, small_network):
        sim, network, a, _b, c = small_network
        injector = FaultInjector(sim, network)
        affected = injector.partition(["a"], ["b", "c"], start=1.0, duration=1.0)
        assert affected == 1
        sim.schedule_at(1.5, lambda: a.send("b", Message("blocked")))
        sim.run_until_idle()
        assert len(injector.log) == 2  # down + up


class TestFaultLog:
    def test_log_is_chronological_even_when_scheduled_out_of_order(self, small_network):
        sim, network, _a, _b, _c = small_network
        injector = FaultInjector(sim, network)
        # scheduled in reverse order; the log must record execution order
        injector.crash_for("b", start=3.0, duration=1.0)
        injector.link_outage("a", "b", start=1.0, duration=0.5)
        sim.run_until_idle()
        assert [e.kind for e in injector.log] == [
            "link_down",
            "link_up",
            "process_down",
            "process_up",
        ]
        times = [e.time for e in injector.log]
        assert times == sorted(times)
        assert len(injector.log) == 4

    def test_of_kind_filters_without_reordering(self, small_network):
        sim, network, _a, _b, _c = small_network
        injector = FaultInjector(sim, network)
        injector.link_outage("a", "b", start=1.0, duration=0.5)
        injector.link_outage("b", "c", start=2.0, duration=0.5)
        injector.crash_for("b", start=1.5, duration=0.2)
        sim.run_until_idle()
        downs = injector.log.of_kind("link_down")
        assert [e.target for e in downs] == ["a<->b", "b<->c"]
        assert [e.target for e in injector.log.of_kind("process_down")] == ["b"]
        assert injector.log.of_kind("meteor-strike") == []

    def test_immediate_fault_helpers_record_and_recover(self, small_network):
        sim, network, a, b, _c = small_network
        injector = FaultInjector(sim, network)
        injector.crash_now("b")
        injector.link_down_now("a", "b")
        assert [e.kind for e in injector.log] == ["process_down", "link_down"]
        injector.link_up_now("a", "b")
        injector.restart_now("b")
        a.send("b", Message("ping"))
        sim.run_until_idle()
        assert [m.kind for m in b.received] == ["ping"]
        assert injector.downtime_events() == (1, 1)


class TestPartitionValidation:
    def test_partition_rejects_empty_sides(self, small_network):
        sim, network, _a, _b, _c = small_network
        injector = FaultInjector(sim, network)
        with pytest.raises(ValueError, match="non-empty"):
            injector.partition([], ["a"], start=1.0, duration=1.0)
        with pytest.raises(ValueError, match="non-empty"):
            injector.partition(["a"], [], start=1.0, duration=1.0)
        assert len(injector.log) == 0  # nothing was scheduled

    def test_partition_rejects_overlapping_sides(self, small_network):
        sim, network, _a, _b, _c = small_network
        injector = FaultInjector(sim, network)
        with pytest.raises(ValueError, match="disjoint; both contain"):
            injector.partition(["a", "b"], ["b", "c"], start=1.0, duration=1.0)
        sim.run_until_idle()
        assert len(injector.log) == 0


class TestSystemUnderFaults:
    def test_broker_link_outage_loses_only_the_outage_window(self):
        sim = Simulator()
        network = line_topology(sim, 3)
        publisher = network.add_client("pub", "B1")
        subscriber = network.add_client("sub", "B3")
        subscriber.subscribe(Filter([Equals("service", "t")]))
        sim.run_until_idle()
        injector = FaultInjector(sim, network.network)
        injector.link_outage("B2", "B3", start=5.0, duration=5.0)
        for second in range(15):
            sim.schedule_at(second + 0.01, lambda s=second: publisher.publish({"service": "t", "seq": s}))
        sim.run_until_idle()
        received = sorted(d.notification["seq"] for d in subscriber.deliveries)
        lost = set(range(15)) - set(received)
        assert lost  # the outage did lose something
        assert lost <= set(range(4, 11))  # ...but only within/around the outage window

    def test_mobile_client_rides_out_replicator_link_outage(self):
        sim = Simulator()
        space = office_floor_space(n_rooms=6, rooms_per_broker=2)
        network = line_topology(sim, 3)
        system = MobilePubSub(sim, network, space, config=MobilitySystemConfig())
        sensor = system.add_publisher("sensor", space.locations[0])
        client = system.add_mobile_client("alice")
        client.subscribe_location(location_dependent({"service": "temperature"}))
        system.attach(client, location=space.locations[0])
        sim.run_until_idle()

        injector = FaultInjector(sim, system.network.network)
        injector.link_outage("R@B1", "B1", start=2.0, duration=1.0)
        sim.schedule_at(1.0, lambda: sensor.publish({"service": "temperature", "location": space.locations[0], "value": 1}))
        sim.schedule_at(4.0, lambda: sensor.publish({"service": "temperature", "location": space.locations[0], "value": 2}))
        sim.run_until_idle()
        values = [d.notification["value"] for d in client.deliveries]
        assert values == [1, 2]  # publications outside the outage window still flow

    @staticmethod
    def _mobility_system():
        sim = Simulator()
        space = office_floor_space(n_rooms=6, rooms_per_broker=2)
        network = line_topology(sim, 3)
        system = MobilePubSub(sim, network, space, config=MobilitySystemConfig())
        loc_b1 = next(l for l in space.locations if space.broker_of(l) == "B1")
        loc_b2 = next(l for l in space.locations if space.broker_of(l) == "B2")
        return sim, space, system, loc_b1, loc_b2

    def test_handover_enters_exception_mode_when_outage_ate_the_shadow(self):
        """``link_outage`` interleaved with attach: the lost SHADOW_CREATE
        forces the next handover into exception (reactive) mode."""
        sim, space, system, loc_b1, loc_b2 = self._mobility_system()
        sensor = system.add_publisher("sensor", loc_b2)
        client = system.add_mobile_client("alice")
        client.subscribe_location(location_dependent({"service": "temperature"}))
        injector = FaultInjector(sim, system.network.network)
        # the replicator-to-replicator control link is down across the attach,
        # so R@B1's pre-subscription SHADOW_CREATE for B2 is silently lost
        injector.link_outage("R@B1", "R@B2", start=0.5, duration=5.0)
        sim.schedule_at(1.0, lambda: system.attach(client, location=loc_b1))
        sim.run_until_idle()

        r2 = system.replicator_for_broker("B2")
        assert r2.stats.exception_activations == 0
        system.move(client, loc_b2)  # handover into the broker with no shadow
        sim.run_until_idle()
        assert r2.stats.exception_activations == 1
        # exception mode is a slow path, not a dead end: deliveries resume
        sensor.publish({"service": "temperature", "location": loc_b2, "value": 7})
        sim.run_until_idle()
        assert [d.notification["value"] for d in client.deliveries] == [7]

    def test_handover_enters_exception_mode_when_replicator_was_crashed(self):
        """``crash_for`` interleaved with attach: a dead target replicator
        drops the SHADOW_CREATE, with the same exception-mode consequence."""
        sim, space, system, loc_b1, loc_b2 = self._mobility_system()
        sensor = system.add_publisher("sensor", loc_b2)
        client = system.add_mobile_client("bob")
        client.subscribe_location(location_dependent({"service": "temperature"}))
        injector = FaultInjector(sim, system.network.network)
        injector.crash_for("R@B2", start=0.5, duration=5.0)
        sim.schedule_at(1.0, lambda: system.attach(client, location=loc_b1))
        sim.run_until_idle()

        r2 = system.replicator_for_broker("B2")
        system.move(client, loc_b2)
        sim.run_until_idle()
        assert r2.stats.exception_activations == 1
        sensor.publish({"service": "temperature", "location": loc_b2, "value": 9})
        sim.run_until_idle()
        assert [d.notification["value"] for d in client.deliveries] == [9]

    def test_handover_without_faults_uses_the_shadow(self):
        """Control run: with no fault the shadow is in place and the same
        walk never touches exception mode."""
        sim, space, system, loc_b1, loc_b2 = self._mobility_system()
        client = system.add_mobile_client("carol")
        client.subscribe_location(location_dependent({"service": "temperature"}))
        system.attach(client, location=loc_b1)
        sim.run_until_idle()
        system.move(client, loc_b2)
        sim.run_until_idle()
        assert system.replicator_for_broker("B2").stats.exception_activations == 0


class TestFaultInjectorDeterminism:
    """Identical seeds must give bit-identical fault logs and deliveries."""

    @staticmethod
    def _run_once(seed: int):
        import random

        rng = random.Random(seed)
        sim = Simulator()
        network = line_topology(sim, 4)
        clients = []
        for i, broker in enumerate(network.broker_names()):
            client = network.add_client(f"c{i}", broker)
            client.subscribe(Filter([Equals("service", "s")]), sub_id=f"d{i}")
            clients.append(client)
        sim.run_until_idle()

        injector = FaultInjector(sim, network.network)
        edges = network.broker_edges()
        for _ in range(5):
            a, b = edges[rng.randrange(len(edges))]
            start = round(rng.uniform(1.0, 20.0), 3)
            injector.link_outage(a, b, start=start, duration=round(rng.uniform(0.5, 3.0), 3))
        crash_target = network.broker_names()[rng.randrange(len(network.broker_names()))]
        injector.crash_for(crash_target, start=round(rng.uniform(1.0, 15.0), 3),
                           duration=round(rng.uniform(0.5, 2.0), 3))

        publisher = network.add_client("pub", "B2")
        for i in range(40):
            at = round(rng.uniform(0.5, 25.0), 3)
            sim.schedule_at(
                at,
                lambda i=i: publisher.publish(
                    Notification({"service": "s", "seq": i}, notification_id=5000 + i)
                ),
            )
        sim.run_until_idle()

        fault_log = tuple((e.time, e.kind, e.target) for e in injector.log)
        deliveries = tuple(
            (client.name, round(d.received_at, 9), d.notification.notification_id)
            for client in clients
            for d in client.deliveries
        )
        return fault_log, deliveries

    def test_same_seed_reproduces_faults_and_deliveries(self):
        assert self._run_once(42) == self._run_once(42)

    def test_different_seed_changes_the_schedule(self):
        log_a, _ = self._run_once(42)
        log_b, _ = self._run_once(43)
        assert log_a != log_b

    def test_log_survives_partition_bookkeeping(self):
        sim = Simulator()
        network = line_topology(sim, 4)
        injector = FaultInjector(sim, network.network)
        affected = injector.partition(["B1", "B2"], ["B3", "B4"], start=1.0, duration=2.0)
        assert affected == 1  # the single tree edge between the two sides
        sim.run_until_idle()
        assert injector.downtime_events() == (1, 0)
