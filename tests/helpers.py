"""Shared test helpers (importable from any test module).

The test directory is not a package, so cross-module imports must go through
this plain module (``from helpers import FakeHost``) instead of relative
imports, which break pytest collection.
"""


class FakeHost:
    """Records what the virtual client asks the replicator to do."""

    def __init__(self):
        self.time = 0.0
        self.subscribed = {}
        self.unsubscribed = []
        self.delivered = []

    @property
    def now(self):
        return self.time

    def issue_subscribe(self, subscription):
        self.subscribed[subscription.sub_id] = subscription

    def issue_unsubscribe(self, subscription):
        self.unsubscribed.append(subscription.sub_id)
        self.subscribed.pop(subscription.sub_id, None)

    def deliver_to_device(self, client_id, notification, replayed):
        self.delivered.append((client_id, notification, replayed))
