"""Chaos fuzzer, invariant library and schedule shrinking.

Five groups:

* **generator determinism** — the same seed draws a byte-identical plan
  (parameters and schedule) and executing it twice gives identical delivered
  sets, which is what makes ``repro chaos-fuzz --seed N`` a complete repro;
* **sweeps** — a block of consecutive seeds holds every invariant on the
  simulator, and spot seeds converge on the real-socket backends against the
  simulator oracle;
* **self-test via injected bugs** — deliberately de-synchronising the
  executor from its oracle (a sever that is never applied, a replay that is
  never published) must be caught by the invariant checkers and shrunk to a
  minimal failing schedule — pinned here so the shrinker cannot rot;
* **invariant library** — each checker fires on the exact observation it
  guards and stays quiet otherwise (including the empty-fault-window
  regression);
* **seeded scripted chaos** — the hand-written storyline accepts a seed,
  replays deterministically, and rejects degenerate burst sizes up front.
"""

import random

import pytest

from repro.net.faults import FaultInjector
from repro.pubsub.broker_network import line_topology
from repro.pubsub.chaos import run_chaos_scenario
from repro.pubsub.chaosgen import (
    ChaosEvent,
    ChaosPlan,
    execute_plan,
    generate_plan,
    run_chaos_fuzz,
    shrink_plan,
    sweep,
)
from repro.pubsub.invariants import (
    InvariantError,
    check_exactly_once,
    check_no_duplicates,
    check_non_growth,
    check_provable_loss,
    require,
)

# --------------------------------------------------------------- generator


def test_same_seed_draws_an_identical_plan():
    for seed in range(20):
        assert generate_plan(seed).describe() == generate_plan(seed).describe()


def test_every_plan_exercises_the_fault_plane():
    for seed in range(40):
        plan = generate_plan(seed)
        assert plan.fault_events(), f"seed {seed} drew a fault-free schedule"
        params = plan.params
        assert 3 <= params.brokers <= 5 and 4 <= params.rounds <= 7
        assert all(0 <= event.round < params.rounds for event in plan.events)


def test_distinct_seeds_draw_distinct_schedules():
    schedules = {tuple(e.describe() for e in generate_plan(s).events) for s in range(40)}
    assert len(schedules) > 30, "the generator collapsed to a handful of schedules"


def test_execution_is_deterministic_per_seed():
    first = execute_plan(generate_plan(5))
    second = execute_plan(generate_plan(5))
    assert first.ok and second.ok
    assert first.delivered == second.delivered
    assert (first.published, first.lost, first.replayed) == (
        second.published,
        second.lost,
        second.replayed,
    )


def test_execution_never_touches_module_level_random():
    # seeded replay relies on nobody sharing the module-level dice: a fuzz
    # run in the middle of any other seeded program must be side-effect free
    random.seed(1234)
    expected = random.Random(1234).random()
    execute_plan(generate_plan(3))
    assert random.random() == expected


# ------------------------------------------------------------------ sweeps


def test_sim_sweep_holds_every_invariant():
    reports = sweep(range(25), backend="sim")
    failures = [report.summary() for report in reports if not report.ok]
    assert not failures, failures


def test_unapplicable_events_are_noops():
    # shrinking produces unpaired schedules: a restart with nobody down, a
    # restore of a live link, a crash of the protected publisher broker —
    # the executor must skip them instead of corrupting the oracle
    plan = generate_plan(0)
    events = (
        ChaosEvent(0, "restart", "B2"),
        ChaosEvent(0, "restore", "B1-B2"),
        ChaosEvent(1, "crash", "B1"),
    ) + plan.events
    result = execute_plan(ChaosPlan(params=plan.params, events=events))
    assert result.ok, [str(v) for v in result.violations]
    assert result.events_skipped >= 3


@pytest.mark.parametrize("seed", [0, 1])
def test_asyncio_converges_to_the_sim_oracle(seed):
    report = run_chaos_fuzz(seed, backend="asyncio")
    assert report.ok, report.summary()


def test_cluster_converges_to_the_sim_oracle():
    report = run_chaos_fuzz(0, backend="cluster")
    assert report.ok, report.summary()


# ------------------------------------------------- injected-bug self-tests


def test_skipped_sever_is_caught_and_shrunk_minimal():
    # the oracle believes the sever happened, the execution never applied
    # it, so publications routed "into the fault" arrive: provable loss
    report = run_chaos_fuzz(1, backend="sim", inject_bug="skip_sever")
    assert not report.ok
    assert any(v.invariant == "provable-loss" for v in report.violations)
    assert report.repro_command == "repro chaos-fuzz --seed 1 --backend sim"
    assert len(report.plan.events) == 6
    assert [e.describe() for e in report.shrunk.events] == ["r0:sever:B1-B2"]


def test_skipped_replay_is_caught_and_shrunk_minimal():
    # the oracle marks lost publications as replayed, the republish never
    # happens: exactly-once fires on the subscriber that stays short
    report = run_chaos_fuzz(1, backend="sim", inject_bug="skip_replay")
    assert not report.ok
    assert any(v.invariant == "exactly-once" for v in report.violations)
    assert [e.describe() for e in report.shrunk.events] == ["r0:sever:B1-B2"]


def test_shrinker_respects_its_execution_budget():
    plan = generate_plan(1)
    calls = []

    def fails(candidate):
        calls.append(len(candidate.events))
        return bool(candidate.events)

    shrunk = shrink_plan(plan, fails, max_executions=5)
    assert len(calls) <= 5
    assert len(shrunk.events) <= len(plan.events)


def test_unknown_injectable_bug_is_rejected():
    with pytest.raises(ValueError, match="unknown injectable bug"):
        execute_plan(generate_plan(0), inject_bug="skip_everything")


# -------------------------------------------------------- fault injector rng


def test_fault_injector_rng_is_private_and_seeded():
    net = line_topology(n_brokers=3)
    try:
        first = FaultInjector(net.sim, net.network, seed=99)
        second = FaultInjector(net.sim, net.network, seed=99)
        draws = [first.rng.random() for _ in range(5)]
        assert draws == [second.rng.random() for _ in range(5)]
        state = first.snapshot()
        replay = [first.rng.random() for _ in range(3)]
        first.restore(state)
        assert [first.rng.random() for _ in range(3)] == replay
    finally:
        net.close()


# --------------------------------------------------------- invariant library


def test_provable_loss_rejects_an_empty_fault_window():
    violations = check_provable_loss("s3", [], [1, 2, 3])
    assert [v.invariant for v in violations] == ["provable-loss"]
    assert "empty fault window" in violations[0].detail


def test_provable_loss_flags_deliveries_inside_the_window():
    assert check_provable_loss("s3", [7, 8], [8])
    assert not check_provable_loss("s3", [7, 8], [1, 2])


def test_exactly_once_flags_missing_and_repeated():
    missing = check_exactly_once("s1", {1, 2}, [1])
    repeated = check_exactly_once("s1", {1}, [1, 1])
    clean = check_exactly_once("s1", {1, 2}, [0, 1, 2, 99])
    assert [v.invariant for v in missing] == ["exactly-once"]
    assert "more than once" in repeated[0].detail
    assert clean == []


def test_non_growth_slack_is_per_key():
    baseline = {"routing:B1": 4, "transport:links": 2}
    grown = {"routing:B1": 5, "transport:links": 3}
    flagged = check_non_growth(baseline, grown, slack={"routing:B1": 1})
    assert [v.subject for v in flagged] == ["transport:links"]
    assert not check_non_growth(baseline, dict(baseline))


def test_require_raises_on_violations():
    require([])
    violations = check_no_duplicates({"s1": 2, "s2": 0})
    assert [v.subject for v in violations] == ["s1"]
    with pytest.raises(InvariantError, match="no-duplicates"):
        require(violations)


# ----------------------------------------------------- seeded scripted chaos


def test_chaos_scenario_rejects_degenerate_burst_sizes():
    with pytest.raises(ValueError, match="non-empty fault window"):
        run_chaos_scenario("sim", deep=0)
    with pytest.raises(ValueError, match="temps >= 2"):
        run_chaos_scenario("sim", temps=1)


def test_seeded_chaos_scenario_is_deterministic():
    first = run_chaos_scenario("sim", seed=7)
    second = run_chaos_scenario("sim", seed=7)
    assert first.seed == 7
    assert first.delivered == second.delivered
    assert first.delivered != run_chaos_scenario("sim", seed=8).delivered


def test_unseeded_chaos_scenario_keeps_the_pinned_storyline():
    result = run_chaos_scenario("sim")
    assert result.seed is None
    assert result.delivered_total() > 0
