"""Unit tests for the device-side mobile client (wireless stub)."""

import pytest

from repro.core.location import office_floor_space
from repro.core.location_filter import location_dependent
from repro.core.middleware import MobilePubSub
from repro.core.mobile_client import MobileClient
from repro.core.replicator import CLIENT_HELLO, CLIENT_SUBSCRIBE
from repro.net.process import Message, Process
from repro.net.simulator import Simulator
from repro.pubsub.broker_network import line_topology
from repro.pubsub.filters import Equals, Filter


class FakeReplicator(Process):
    """Accepts device-protocol messages and records them."""

    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.received = []

    def on_message(self, message):
        self.received.append(message)

    def kinds(self):
        return [message.kind for message in self.received]


@pytest.fixture
def device_setup():
    sim = Simulator()
    replicator = FakeReplicator(sim, "R@B1")
    client = MobileClient(sim, "alice", connect_latency=0.1)
    return sim, replicator, client


class TestHelloProtocol:
    def test_hello_sent_on_attach_with_profile(self, device_setup):
        sim, replicator, client = device_setup
        client.subscribe_location(location_dependent({"service": "temperature"}), "temp")
        client.subscribe(Filter([Equals("service", "stock")]), "stock")
        client.set_location("room-00")
        client.attach(replicator, "B1")
        sim.run_until_idle()
        hello = [m for m in replicator.received if m.kind == CLIENT_HELLO][0].payload
        assert hello.client_id == "alice"
        assert hello.location == "room-00"
        assert "temp" in hello.templates
        assert "stock" in hello.plain_filters
        assert hello.previous_broker is None
        assert hello.reissue

    def test_hello_after_move_carries_previous_broker(self, device_setup):
        sim, replicator, client = device_setup
        other = FakeReplicator(sim, "R@B2")
        client.attach(replicator, "B1")
        sim.run_until_idle()
        client.detach()
        client.attach(other, "B2")
        sim.run_until_idle()
        hello = [m for m in other.received if m.kind == CLIENT_HELLO][0].payload
        assert hello.previous_broker == "B1"

    def test_no_reissue_client_sends_empty_profile_after_first_attach(self, device_setup):
        sim, replicator, client = device_setup
        client.reissue_on_attach = False
        client.subscribe_location(location_dependent({"service": "temperature"}))
        other = FakeReplicator(sim, "R@B2")
        client.attach(replicator, "B1")
        sim.run_until_idle()
        first_hello = [m for m in replicator.received if m.kind == CLIENT_HELLO][0].payload
        assert first_hello.templates  # announced on first attachment
        client.detach()
        client.attach(other, "B2")
        sim.run_until_idle()
        second_hello = [m for m in other.received if m.kind == CLIENT_HELLO][0].payload
        assert second_hello.templates == {}
        assert second_hello.reissue is False


class TestApiWhileConnected:
    def test_subscribe_and_location_updates_forwarded(self, device_setup):
        sim, replicator, client = device_setup
        client.attach(replicator, "B1")
        sim.run_until_idle()
        client.subscribe_location(location_dependent({"service": "menu"}))
        client.set_location("room-01")
        client.subscribe(Filter([Equals("service", "stock")]))
        sim.run_until_idle()
        kinds = replicator.kinds()
        assert kinds.count(CLIENT_SUBSCRIBE) == 2
        assert "location_update" in kinds

    def test_publish_stamps_metadata(self, device_setup):
        sim, replicator, client = device_setup
        client.attach(replicator, "B1")
        sim.run_until_idle()
        stamped = client.publish({"service": "chat"})
        assert stamped.publisher == "alice"
        assert stamped.published_at == sim.now
        sim.run_until_idle()
        assert "publish" in replicator.kinds()

    def test_unsubscribe_forwarded(self, device_setup):
        sim, replicator, client = device_setup
        client.attach(replicator, "B1")
        sim.run_until_idle()
        sub_id = client.subscribe(Filter([Equals("service", "stock")]))
        template_id = client.subscribe_location(location_dependent({"service": "menu"}))
        client.unsubscribe(sub_id)
        client.unsubscribe_location(template_id)
        sim.run_until_idle()
        assert replicator.kinds().count("client_unsubscribe") == 2
        assert client.plain_filters == {}
        assert client.templates == {}

    def test_detach_announces_leaving_and_shutdown_sends_bye(self, device_setup):
        sim, replicator, client = device_setup
        client.attach(replicator, "B1")
        sim.run_until_idle()
        client.detach(announce=True)
        sim.run_until_idle()
        assert "client_leaving" in replicator.kinds()
        client.attach(replicator, "B1")
        sim.run_until_idle()
        client.shutdown_application()
        sim.run_until_idle()
        assert "client_bye" in replicator.kinds()
        assert not client.connected


class TestDeliveryBookkeeping:
    def test_notify_records_delivery_with_replay_flag(self, device_setup):
        sim, replicator, client = device_setup
        client.set_location("room-00")
        client.attach(replicator, "B1")
        sim.run_until_idle()
        from repro.pubsub.notification import Notification

        replicator.send("alice", Message(kind="notify", payload=Notification({"a": 1}), meta={"replayed": True}))
        replicator.send("alice", Message(kind="notify", payload=Notification({"a": 2})))
        sim.run_until_idle()
        assert len(client.deliveries) == 2
        assert len(client.replayed_deliveries()) == 1
        assert len(client.live_deliveries()) == 1
        assert client.deliveries[0].location == "room-00"
        assert client.duplicate_deliveries() == 0

    def test_location_and_broker_traces_recorded(self, device_setup):
        sim, replicator, client = device_setup
        client.set_location("room-00")
        client.attach(replicator, "B1")
        sim.run_until_idle()
        client.set_location("room-01")
        assert [loc for _t, loc in client.location_trace] == ["room-00", "room-01"]
        assert [broker for _t, broker in client.broker_trace] == ["B1"]
