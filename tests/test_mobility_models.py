"""Unit tests for mobility models, traces and the movement driver."""

import random

import pytest

from repro.core.location import cell_grid_space, cell_name, office_floor_space
from repro.core.location_filter import location_dependent
from repro.core.movement_graph import from_location_space
from repro.mobility.models import (
    MarkovMobility,
    MobilityDriver,
    RandomWalkMobility,
    RoutePathMobility,
    StaticMobility,
    TeleportMobility,
)
from repro.mobility.scenario import build_office_scenario, grid_route
from repro.mobility.trace import (
    MovementTrace,
    TraceEntry,
    coverage_against_graph,
    synthetic_commuter_trace,
    trace_from_model,
)


@pytest.fixture
def grid_space():
    return cell_grid_space(3, 3)


class TestModels:
    def test_static_model_single_waypoint(self):
        waypoints = StaticMobility("r1").waypoints(100.0, random.Random(0))
        assert len(waypoints) == 1
        assert waypoints[0].location == "r1"

    def test_random_walk_respects_adjacency(self, grid_space):
        model = RandomWalkMobility(grid_space, start=cell_name(0, 0), dwell_time=5.0)
        waypoints = model.waypoints(500.0, random.Random(1))
        assert waypoints[0].location == cell_name(0, 0)
        for previous, current in zip(waypoints, waypoints[1:]):
            if previous.location != current.location:
                assert current.location in grid_space.neighbours_of(previous.location)

    def test_random_walk_deterministic_for_seed(self, grid_space):
        model = RandomWalkMobility(grid_space, start=cell_name(0, 0), dwell_time=5.0)
        a = model.waypoints(200.0, random.Random(7))
        b = model.waypoints(200.0, random.Random(7))
        assert [w.location for w in a] == [w.location for w in b]

    def test_random_walk_rejects_bad_dwell(self, grid_space):
        with pytest.raises(ValueError):
            RandomWalkMobility(grid_space, start=cell_name(0, 0), dwell_time=0)

    def test_route_path_follows_path_then_stops(self):
        model = RoutePathMobility(["a", "b", "c"], dwell_time=5.0)
        waypoints = model.waypoints(100.0, random.Random(0))
        assert [w.location for w in waypoints] == ["a", "b", "c"]

    def test_route_path_loops(self):
        model = RoutePathMobility(["a", "b"], dwell_time=5.0, loop=True)
        waypoints = model.waypoints(22.0, random.Random(0))
        assert [w.location for w in waypoints] == ["a", "b", "a", "b", "a"]

    def test_route_path_validation(self):
        with pytest.raises(ValueError):
            RoutePathMobility([])
        with pytest.raises(ValueError):
            RoutePathMobility(["a"], dwell_time=0)

    def test_markov_mobility_follows_transition_matrix(self):
        transitions = {"home": {"office": 1.0}, "office": {"home": 1.0}}
        model = MarkovMobility(transitions, start="home", dwell_time=10.0)
        waypoints = model.waypoints(100.0, random.Random(3))
        locations = [w.location for w in waypoints]
        # strictly alternates because both transitions are certain
        for previous, current in zip(locations, locations[1:]):
            assert previous != current

    def test_markov_mobility_stays_put_with_missing_mass(self):
        model = MarkovMobility({"home": {}}, start="home", dwell_time=10.0)
        waypoints = model.waypoints(100.0, random.Random(3))
        assert all(w.location == "home" for w in waypoints)

    def test_teleport_marks_power_off(self, grid_space):
        model = TeleportMobility(grid_space, start=cell_name(0, 0), on_time=10.0, off_time=5.0)
        waypoints = model.waypoints(100.0, random.Random(5))
        assert not waypoints[0].after_power_off
        assert all(w.after_power_off for w in waypoints[1:])
        assert all(w.offline_before == 5.0 for w in waypoints[1:])

    def test_broker_trace_helper(self, grid_space):
        model = RandomWalkMobility(grid_space, start=cell_name(0, 0), dwell_time=5.0)
        trace = model.broker_trace(grid_space, 100.0, random.Random(1))
        assert all(broker.startswith("B_") for broker in trace)


class TestMovementTrace:
    def test_from_waypoints_and_handovers(self, grid_space):
        model = RoutePathMobility([cell_name(0, 0), cell_name(0, 1), cell_name(0, 1)], dwell_time=5.0)
        trace = MovementTrace.from_waypoints(model.waypoints(100.0, random.Random(0)), grid_space)
        assert trace.brokers() == ["B_0_0", "B_0_1", "B_0_1"]
        assert trace.handovers() == [("B_0_0", "B_0_1")]
        assert trace.handover_count() == 1

    def test_broker_at(self):
        trace = MovementTrace([TraceEntry(0.0, "B1"), TraceEntry(10.0, "B2")])
        assert trace.broker_at(5.0) == "B1"
        assert trace.broker_at(10.0) == "B2"
        assert trace.broker_at(-1.0) is None
        assert trace.duration() == 10.0

    def test_append_keeps_order(self):
        trace = MovementTrace([TraceEntry(10.0, "B2")])
        trace.append(TraceEntry(0.0, "B1"))
        assert trace.brokers() == ["B1", "B2"]

    def test_synthetic_commuter_trace_alternates(self):
        trace = synthetic_commuter_trace("home", "office", days=3, detour_probability=0.0)
        handovers = trace.handovers()
        assert ("home", "office") in handovers
        assert ("office", "home") in handovers

    def test_commuter_detours_present_when_probability_high(self):
        trace = synthetic_commuter_trace(
            "home", "office", days=5, detour_brokers=["mall"], detour_probability=1.0
        )
        assert "mall" in trace.brokers()

    def test_coverage_against_graph(self, grid_space):
        graph = from_location_space(grid_space)
        good = MovementTrace([TraceEntry(0.0, "B_0_0"), TraceEntry(1.0, "B_0_1")])
        bad = MovementTrace([TraceEntry(0.0, "B_0_0"), TraceEntry(1.0, "B_2_2")])
        assert coverage_against_graph(good, graph) == 1.0
        assert coverage_against_graph(bad, graph) == 0.0
        assert coverage_against_graph(MovementTrace([]), graph) == 1.0

    def test_trace_from_model(self, grid_space):
        model = RandomWalkMobility(grid_space, start=cell_name(1, 1), dwell_time=10.0)
        trace = trace_from_model(model, grid_space, duration=200.0, seed=2)
        assert len(trace) >= 2


class TestMobilityDriver:
    def test_driver_executes_waypoints(self):
        scenario = build_office_scenario(n_rooms=6, rooms_per_broker=2)
        client = scenario.system.add_mobile_client("alice")
        client.subscribe_location(location_dependent({"service": "temperature"}))
        rooms = scenario.space.locations
        model = RoutePathMobility(rooms, dwell_time=5.0)
        driver = MobilityDriver(scenario.system, client, model, duration=40.0)
        driver.start()
        scenario.run(40.0)
        assert driver.moves_executed == len(driver.waypoints)
        assert client.current_broker == scenario.space.broker_of(rooms[-1])
        assert len(client.attachments) == len(scenario.space.brokers())

    def test_driver_power_off_periods_disconnect_the_client(self):
        scenario = build_office_scenario(n_rooms=4, rooms_per_broker=2)
        client = scenario.system.add_mobile_client("alice")
        space = scenario.space
        model = TeleportMobility(space, start=space.locations[0], on_time=10.0, off_time=5.0)
        driver = MobilityDriver(scenario.system, client, model, duration=16.0)
        driver.start()
        # at t=12 the client should be inside its first off period (10..15)
        scenario.sim.run(until=12.0)
        assert not client.connected
        scenario.run(20.0)
        assert client.connected

    def test_broker_trace_matches_waypoints(self):
        scenario = build_office_scenario(n_rooms=6, rooms_per_broker=2)
        client = scenario.system.add_mobile_client("alice")
        model = RoutePathMobility(scenario.space.locations, dwell_time=5.0)
        driver = MobilityDriver(scenario.system, client, model, duration=40.0)
        assert driver.broker_trace() == [
            scenario.space.broker_of(w.location) for w in driver.waypoints
        ]


class TestGridRoute:
    def test_grid_route_is_adjacent_path(self):
        path = grid_route(3, 3, seed=1, length=10)
        space = cell_grid_space(3, 3)
        assert len(path) == 10
        for previous, current in zip(path, path[1:]):
            assert current in space.neighbours_of(previous)
