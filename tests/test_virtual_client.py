"""Unit tests for virtual clients (active vs buffering shadows)."""

import pytest

from repro.core.buffering import CountBasedPolicy, SharedNotificationStore
from repro.core.location import LocationSpace
from repro.core.location_filter import location_dependent
from repro.core.virtual_client import VirtualClient, VirtualClientMode
from repro.pubsub.filters import Equals, Filter
from repro.pubsub.notification import Notification

from helpers import FakeHost


@pytest.fixture
def space():
    return LocationSpace({"r1": "B1", "r2": "B1", "r3": "B2"})


@pytest.fixture
def host():
    return FakeHost()


@pytest.fixture
def shadow(host, space):
    """A freshly created shadow (buffering) virtual client at B1."""
    vc = VirtualClient("alice", host, "B1", space)
    vc.add_template("temp", location_dependent({"service": "temperature"}))
    return vc


def temp(room):
    return Notification({"service": "temperature", "location": room, "value": 20})


class TestShadowBehaviour:
    def test_starts_in_buffering_mode(self, shadow):
        assert shadow.mode is VirtualClientMode.BUFFERING
        assert not shadow.is_active

    def test_shadow_binds_to_broker_coverage(self, shadow, host):
        (subscription,) = host.subscribed.values()
        assert subscription.filter.matches(temp("r1"))
        assert subscription.filter.matches(temp("r2"))
        assert not subscription.filter.matches(temp("r3"))
        assert subscription.location_dependent

    def test_shadow_buffers_matching_notifications(self, shadow, host):
        assert shadow.handle_notification(temp("r1")) is False
        assert len(shadow.buffer) == 1
        assert host.delivered == []

    def test_shadow_ignores_non_matching(self, shadow):
        assert shadow.handle_notification(temp("r3")) is False
        assert len(shadow.buffer) == 0

    def test_shadow_does_not_install_plain_filters(self, shadow, host):
        shadow.add_plain_filter("stock", Filter([Equals("service", "stock")]))
        assert all("plain" not in sub_id for sub_id in host.subscribed)
        # but the filter is remembered for later activation
        assert "stock" in shadow.plain_filters


class TestActivation:
    def test_activation_rebinds_and_replays(self, shadow, host):
        shadow.handle_notification(temp("r1"))
        shadow.handle_notification(temp("r2"))
        replay = shadow.activate("r1")
        assert shadow.is_active
        assert [n["location"] for n in replay] == ["r1", "r2"]
        assert len(shadow.buffer) == 0
        # after activation the binding is the precise myloc, not the broker area
        bound = [s for s in host.subscribed.values() if s.location_dependent]
        assert len(bound) == 1
        assert bound[0].filter.matches(temp("r1"))
        assert not bound[0].filter.matches(temp("r2"))

    def test_activation_installs_plain_filters(self, shadow, host):
        shadow.add_plain_filter("stock", Filter([Equals("service", "stock")]))
        shadow.activate("r1")
        assert any("plain-stock" in sub_id for sub_id in host.subscribed)

    def test_active_delivers_live(self, shadow, host):
        shadow.activate("r1")
        assert shadow.handle_notification(temp("r1")) is True
        assert len(host.delivered) == 1
        client_id, _notification, replayed = host.delivered[0]
        assert client_id == "alice" and replayed is False

    def test_update_location_rebinds(self, shadow, host):
        shadow.activate("r1")
        shadow.update_location("r2")
        bound = [s for s in host.subscribed.values() if s.location_dependent]
        assert bound[0].filter.matches(temp("r2"))
        assert not bound[0].filter.matches(temp("r1"))

    def test_update_location_noop_when_buffering(self, shadow, host):
        before = dict(host.subscribed)
        shadow.update_location("r2")
        assert host.subscribed == before

    def test_deactivate_returns_to_broker_binding(self, shadow, host):
        shadow.activate("r1")
        shadow.deactivate()
        assert not shadow.is_active
        bound = [s for s in host.subscribed.values() if s.location_dependent]
        assert bound[0].filter.matches(temp("r2"))

    def test_deactivate_keeps_plain_filters_installed(self, shadow, host):
        shadow.add_plain_filter("stock", Filter([Equals("service", "stock")]))
        shadow.activate("r1")
        shadow.deactivate()
        assert any("plain-stock" in sub_id for sub_id in host.subscribed)
        # the old broker keeps buffering stock quotes for the disconnected client
        assert shadow.handle_notification(Notification({"service": "stock", "price": 1})) is False
        assert len(shadow.buffer) == 1

    def test_unknown_location_falls_back_to_broker_binding(self, shadow, host):
        shadow.activate("not-a-location")
        bound = [s for s in host.subscribed.values() if s.location_dependent]
        assert bound[0].filter.matches(temp("r1")) and bound[0].filter.matches(temp("r2"))


class TestSubscriptionManagement:
    def test_remove_template_unsubscribes(self, shadow, host):
        shadow.remove_template("temp")
        assert host.subscribed == {}
        assert len(host.unsubscribed) == 1

    def test_set_templates_reconciles(self, shadow, host, space):
        new_templates = {
            "menu": location_dependent({"service": "restaurant-menu"}),
        }
        shadow.set_templates(new_templates)
        assert set(shadow.templates) == {"menu"}
        assert len([s for s in host.subscribed.values()]) == 1

    def test_remove_plain_filter(self, shadow, host):
        shadow.add_plain_filter("stock", Filter([Equals("service", "stock")]))
        shadow.activate("r1")
        shadow.remove_plain_filter("stock")
        assert not any("plain-stock" in sub_id for sub_id in host.subscribed)

    def test_withdraw_plain_filters(self, shadow, host):
        shadow.add_plain_filter("stock", Filter([Equals("service", "stock")]))
        shadow.activate("r1")
        shadow.withdraw_plain_filters()
        assert not any("plain" in sub_id for sub_id in host.subscribed)
        assert "stock" in shadow.plain_filters  # remembered, just not installed

    def test_teardown_unsubscribes_everything_and_drops_buffer(self, shadow, host):
        shadow.add_plain_filter("stock", Filter([Equals("service", "stock")]))
        shadow.handle_notification(temp("r1"))
        dropped = shadow.teardown()
        assert dropped == 1
        assert host.subscribed == {}
        assert len(shadow.buffer) == 0

    def test_rebind_is_idempotent(self, shadow, host):
        before = shadow.rebinds
        shadow.deactivate()  # binding unchanged (already broker scope)
        assert shadow.rebinds == before


class TestBufferOptions:
    def test_buffer_policy_applied(self, host, space):
        vc = VirtualClient("alice", host, "B1", space, buffer_policy=CountBasedPolicy(2))
        vc.add_template("temp", location_dependent({"service": "temperature"}))
        for _ in range(5):
            vc.handle_notification(temp("r1"))
        assert len(vc.buffer) == 2

    def test_shared_store_buffering(self, host, space):
        store = SharedNotificationStore()
        vc1 = VirtualClient("alice", host, "B1", space, shared_store=store)
        vc2 = VirtualClient("bob", host, "B1", space, shared_store=store)
        for vc in (vc1, vc2):
            vc.add_template("temp", location_dependent({"service": "temperature"}))
        n = temp("r1")
        vc1.handle_notification(n)
        vc2.handle_notification(n)
        assert len(store) == 1  # stored once, referenced twice
        assert vc1.memory_bytes() < n.estimated_size()

    def test_matches_and_bound_filters(self, shadow):
        assert shadow.matches(temp("r1"))
        assert not shadow.matches(Notification({"service": "stock"}))
        assert len(shadow.bound_filters()) == 1
