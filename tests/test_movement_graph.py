"""Unit and property tests for movement graphs and the nlb function."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.location import cell_grid_space
from repro.core.movement_graph import (
    MovementGraph,
    complete_graph,
    from_edges,
    from_location_space,
    grid_graph,
    line_graph,
)


@pytest.fixture
def triangle_plus_tail():
    """A - B - C - D with an extra A-C edge."""
    return from_edges([("A", "B"), ("B", "C"), ("C", "D"), ("A", "C")])


class TestNlb:
    def test_nlb_excludes_self(self, triangle_plus_tail):
        assert triangle_plus_tail.nlb("A") == frozenset({"B", "C"})

    def test_nlb_unknown_broker_raises(self, triangle_plus_tail):
        with pytest.raises(KeyError):
            triangle_plus_tail.nlb("Z")

    def test_nlb_k_zero_is_empty(self, triangle_plus_tail):
        assert triangle_plus_tail.nlb_k("A", 0) == frozenset()

    def test_nlb_k_one_equals_nlb(self, triangle_plus_tail):
        assert triangle_plus_tail.nlb_k("A", 1) == triangle_plus_tail.nlb("A")

    def test_nlb_k_grows_monotonically(self, triangle_plus_tail):
        one = triangle_plus_tail.nlb_k("D", 1)
        two = triangle_plus_tail.nlb_k("D", 2)
        three = triangle_plus_tail.nlb_k("D", 3)
        assert one <= two <= three
        assert three == frozenset({"A", "B", "C"})

    def test_nlb_k_negative_rejected(self, triangle_plus_tail):
        with pytest.raises(ValueError):
            triangle_plus_tail.nlb_k("A", -1)

    def test_callable_syntax(self, triangle_plus_tail):
        assert triangle_plus_tail("A") == triangle_plus_tail.nlb("A")

    def test_self_edge_ignored(self):
        graph = MovementGraph(["A"])
        graph.add_edge("A", "A")
        assert graph.nlb("A") == frozenset()

    def test_remove_edge(self, triangle_plus_tail):
        triangle_plus_tail.remove_edge("A", "C")
        assert triangle_plus_tail.nlb("A") == frozenset({"B"})


class TestAnalysis:
    def test_degree_and_average(self, triangle_plus_tail):
        assert triangle_plus_tail.degree("C") == 3
        assert triangle_plus_tail.average_degree() == pytest.approx((2 + 2 + 3 + 1) / 4)
        assert triangle_plus_tail.max_degree() == 3

    def test_flooding_detection(self):
        assert complete_graph(["A", "B", "C"]).is_flooding()
        assert not line_graph(["A", "B", "C"]).is_flooding()
        assert complete_graph(["A", "B", "C"]).flooding_ratio() == pytest.approx(1.0)

    def test_single_broker_not_flooding(self):
        assert not MovementGraph(["A"]).is_flooding()
        assert MovementGraph(["A"]).flooding_ratio() == 0.0

    def test_shortest_path(self, triangle_plus_tail):
        assert triangle_plus_tail.shortest_path_length("A", "A") == 0
        assert triangle_plus_tail.shortest_path_length("A", "D") == 2
        graph = from_edges([("A", "B")], brokers=["A", "B", "C"])
        assert graph.shortest_path_length("A", "C") is None

    def test_respects_trace(self, triangle_plus_tail):
        assert triangle_plus_tail.respects(["A", "B", "C", "D"])
        assert triangle_plus_tail.respects(["A", "A", "B"])  # staying put is fine
        assert not triangle_plus_tail.respects(["A", "D"])

    def test_coverage_of_trace(self, triangle_plus_tail):
        assert triangle_plus_tail.coverage_of_trace(["A", "B", "C"]) == 1.0
        assert triangle_plus_tail.coverage_of_trace(["A", "D", "C"]) == pytest.approx(0.5)
        assert triangle_plus_tail.coverage_of_trace(["A"]) == 1.0
        assert triangle_plus_tail.coverage_of_trace(["A", "A", "A"]) == 1.0


class TestBuilders:
    def test_line_graph(self):
        graph = line_graph(["A", "B", "C"])
        assert graph.nlb("B") == frozenset({"A", "C"})
        assert graph.nlb("A") == frozenset({"B"})

    def test_grid_graph_degrees(self):
        graph = grid_graph(3, 3)
        assert graph.degree("B_1_1") == 4
        assert graph.degree("B_0_0") == 2
        diagonal = grid_graph(3, 3, diagonal=True)
        assert diagonal.degree("B_1_1") == 8

    def test_complete_graph(self):
        graph = complete_graph(["A", "B", "C", "D"])
        assert all(graph.degree(b) == 3 for b in graph.brokers)

    def test_from_location_space(self):
        space = cell_grid_space(2, 2)
        graph = from_location_space(space)
        assert set(graph.brokers) == {"B_0_0", "B_0_1", "B_1_0", "B_1_1"}
        assert graph.has_edge("B_0_0", "B_0_1")
        assert not graph.has_edge("B_0_0", "B_1_1")  # diagonal cells are not adjacent

    def test_from_location_space_multi_cell_brokers(self):
        from repro.core.location import office_floor_space

        space = office_floor_space(n_rooms=8, rooms_per_broker=4)
        graph = from_location_space(space)
        assert graph.has_edge("B1", "B2")
        assert len(graph.edges()) == 1

    def test_edges_listing_is_deduplicated(self):
        graph = from_edges([("A", "B"), ("B", "A")])
        assert graph.edges() == [("A", "B")]


# ------------------------------------------------------------------ properties

broker_lists = st.lists(
    st.sampled_from([f"B{i}" for i in range(8)]), min_size=2, max_size=8, unique=True
)


@settings(max_examples=100, deadline=None)
@given(brokers=broker_lists, data=st.data())
def test_nlb_symmetry(brokers, data):
    """The movement graph is undirected: b2 in nlb(b1) iff b1 in nlb(b2)."""
    edges = data.draw(
        st.lists(st.tuples(st.sampled_from(brokers), st.sampled_from(brokers)), max_size=12)
    )
    graph = from_edges(edges, brokers=brokers)
    for a in graph.brokers:
        for b in graph.nlb(a):
            assert a in graph.nlb(b)
            assert a != b


@settings(max_examples=60, deadline=None)
@given(brokers=broker_lists, data=st.data(), k=st.integers(1, 4))
def test_nlb_k_monotone_in_k(brokers, data, k):
    edges = data.draw(
        st.lists(st.tuples(st.sampled_from(brokers), st.sampled_from(brokers)), max_size=12)
    )
    graph = from_edges(edges, brokers=brokers)
    for broker in graph.brokers:
        assert graph.nlb_k(broker, k) <= graph.nlb_k(broker, k + 1)


@settings(max_examples=60, deadline=None)
@given(brokers=broker_lists)
def test_complete_graph_nlb_is_everyone_else(brokers):
    graph = complete_graph(brokers)
    for broker in brokers:
        assert graph.nlb(broker) == frozenset(set(brokers) - {broker})
