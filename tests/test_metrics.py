"""Unit tests for the QoS metrics helpers."""

import pytest

from repro.core.location import office_floor_space
from repro.core.location_filter import location_dependent
from repro.core.metrics import (
    DeliveryOutcome,
    evaluate_plain_delivery,
    handover_latencies,
    location_at_factory,
    mean,
    percentile,
    relevant_notification_ids,
)
from repro.core.mobile_client import AttachmentRecord, MobileClient, MobileDelivery
from repro.net.simulator import Simulator
from repro.pubsub.filters import Equals, Filter
from repro.pubsub.notification import Notification


def make_notification(room, at, service="temperature"):
    return Notification({"service": service, "location": room}, published_at=at)


class TestLocationAt:
    def test_lookup_between_trace_points(self):
        location_at = location_at_factory([(0.0, "r1"), (10.0, "r2"), (20.0, "r3")])
        assert location_at(-1.0) is None
        assert location_at(0.0) == "r1"
        assert location_at(9.9) == "r1"
        assert location_at(10.0) == "r2"
        assert location_at(99.0) == "r3"

    def test_empty_trace(self):
        assert location_at_factory([])(5.0) is None


class TestRelevance:
    def test_relevant_ids_follow_the_trace(self):
        space = office_floor_space(n_rooms=4, rooms_per_broker=4)
        rooms = space.locations
        template = location_dependent({"service": "temperature"})
        location_at = location_at_factory([(0.0, rooms[0]), (10.0, rooms[1])])
        published = [
            make_notification(rooms[0], 5.0),   # relevant (client in rooms[0])
            make_notification(rooms[1], 5.0),   # not relevant yet
            make_notification(rooms[1], 15.0),  # relevant (client moved)
            make_notification(rooms[0], 15.0),  # no longer relevant
            make_notification(rooms[0], 5.0, service="stock"),  # wrong service
        ]
        relevant = relevant_notification_ids(published, location_at, template, space)
        assert relevant == {published[0].notification_id, published[2].notification_id}

    def test_unstamped_or_unknown_location_ignored(self):
        space = office_floor_space(n_rooms=2, rooms_per_broker=2)
        template = location_dependent({"service": "temperature"})
        published = [
            Notification({"service": "temperature", "location": space.locations[0]}),  # no timestamp
            make_notification(space.locations[0], 100.0),  # before the trace starts
        ]
        relevant = relevant_notification_ids(
            published, location_at_factory([(200.0, space.locations[0])]), template, space
        )
        assert relevant == set()


class TestOutcomes:
    def test_plain_delivery_outcome(self):
        published = [Notification({"service": "stock", "seq": i}, published_at=float(i)) for i in range(5)]
        stock_filter = Filter([Equals("service", "stock")])
        delivered_ids = [published[0].notification_id, published[1].notification_id, published[1].notification_id]
        outcome = evaluate_plain_delivery(delivered_ids, published, stock_filter)
        assert outcome.relevant == 5
        assert outcome.delivered_relevant == 2
        assert outcome.missed == 3
        assert outcome.duplicates == 1
        assert outcome.miss_rate == pytest.approx(0.6)
        assert outcome.delivery_rate == pytest.approx(0.4)

    def test_outcome_with_no_relevant_notifications(self):
        outcome = DeliveryOutcome(
            relevant=0, delivered_relevant=0, missed=0, duplicates=0, extraneous=0, replayed=0, live=0
        )
        assert outcome.miss_rate == 0.0
        assert outcome.delivery_rate == 1.0
        assert "miss_rate" in outcome.as_row()


class TestHandoverLatencies:
    def test_first_delivery_assigned_to_the_right_attachment(self):
        sim = Simulator()
        client = MobileClient(sim, "alice")
        client.attachments.extend(
            [
                AttachmentRecord(broker="B1", requested_at=0.0, welcomed_at=0.1),
                AttachmentRecord(broker="B2", requested_at=10.0, welcomed_at=10.2),
            ]
        )
        client.deliveries.extend(
            [
                MobileDelivery(Notification({"a": 1}), received_at=0.5, replayed=False, location=None, broker="B1"),
                MobileDelivery(Notification({"a": 2}), received_at=11.0, replayed=True, location=None, broker="B2"),
            ]
        )
        latencies = handover_latencies(client)
        assert len(latencies) == 2
        assert latencies[0].first_delivery_latency == pytest.approx(0.5)
        assert latencies[1].first_delivery_latency == pytest.approx(1.0)
        assert latencies[0].setup_latency == pytest.approx(0.1)

    def test_attachment_without_delivery(self):
        sim = Simulator()
        client = MobileClient(sim, "alice")
        client.attachments.append(AttachmentRecord(broker="B1", requested_at=0.0))
        (latency,) = handover_latencies(client)
        assert latency.first_delivery_latency is None
        assert latency.setup_latency is None


class TestStatistics:
    def test_mean(self):
        assert mean([]) == 0.0
        assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)
        assert mean([1.0, None, 3.0]) == pytest.approx(2.0)

    def test_percentile(self):
        values = [float(v) for v in range(1, 11)]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 10.0
        assert percentile(values, 50) == pytest.approx(5.5)
        assert percentile([], 50) == 0.0
        assert percentile([7.0], 90) == 7.0
