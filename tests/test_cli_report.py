"""Tests for the CLI and the markdown report generator."""

import pytest

from repro.cli import build_parser, main
from repro.experiments import EXPERIMENTS, e13_replicator_ablation
from repro.experiments.report import (
    QUICK_OVERRIDES,
    render_markdown,
    run_experiments,
    write_report,
)


class TestReport:
    def test_run_experiments_subset_with_overrides(self):
        results = run_experiments(["E7", "E8"], overrides={"E8": {"client_counts": (1, 2)}})
        assert set(results) == {"E7", "E8"}
        _title, table = results["E8"]
        assert table.column("clients") == [1, 2]

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_experiments(["E99"])

    def test_render_markdown_contains_tables(self):
        results = run_experiments(["E7"])
        text = render_markdown(results, elapsed=1.0)
        assert "# Reproduced experiment results" in text
        assert "## E7" in text
        assert "| policy |" in text

    def test_write_report_creates_file(self, tmp_path):
        path = write_report(tmp_path / "report.md", experiment_ids=["E8"], overrides={"E8": {"client_counts": (1, 2)}})
        content = path.read_text()
        assert "## E8" in content

    def test_quick_overrides_reference_known_experiments(self):
        assert set(QUICK_OVERRIDES) <= set(EXPERIMENTS)


class TestCli:
    def test_parser_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["experiments", "E7", "--quick"])
        assert args.command == "experiments" and args.ids == ["E7"] and args.quick

    def test_net_demo_parser_defaults(self):
        args = build_parser().parse_args(["net-demo"])
        assert args.command == "net-demo"
        assert args.backend == "asyncio"
        assert args.brokers == 3 and args.publishes == 20

    def test_net_demo_on_simulator(self, capsys):
        assert main(["net-demo", "--backend", "sim", "--brokers", "3", "--publishes", "12"]) == 0
        output = capsys.readouterr().out
        assert "deliveries verified: OK" in output
        assert "'sim' backend" in output

    def test_net_demo_on_asyncio_sockets(self, capsys):
        assert main(["net-demo", "--backend", "asyncio", "--brokers", "3", "--publishes", "12"]) == 0
        output = capsys.readouterr().out
        assert "deliveries verified: OK" in output
        assert "localhost TCP" in output

    def test_net_demo_rejects_degenerate_sizes(self, capsys):
        assert main(["net-demo", "--brokers", "1"]) == 2
        assert main(["net-demo", "--publishes", "0"]) == 2

    def test_info_command(self, capsys):
        assert main(["info"]) == 0
        output = capsys.readouterr().out
        assert "repro.core" in output
        assert "E13" in output

    def test_experiments_command_with_report(self, capsys, tmp_path):
        report = tmp_path / "out.md"
        assert main(["experiments", "e7", "--report", str(report)]) == 0
        output = capsys.readouterr().out
        assert "E7" in output
        assert report.exists()

    def test_experiments_command_rejects_unknown(self, capsys):
        assert main(["experiments", "E99"]) == 2

    def test_no_command_prints_help(self, capsys):
        assert main([]) == 0
        assert "usage" in capsys.readouterr().out.lower()

    def test_demo_command_runs_quickstart(self, capsys):
        assert main(["demo", "quickstart"]) == 0
        assert "alice" in capsys.readouterr().out


class TestE13Ablation:
    def test_registry_includes_ablation(self):
        assert "E13" in EXPERIMENTS

    def test_ablation_shapes(self):
        table = e13_replicator_ablation.run(duration=40.0)
        rows = {row["configuration"]: row for row in table.rows}
        # unfiltered replay hands strictly more notifications to the device
        assert rows["unfiltered-replay"]["replayed"] >= rows["baseline"]["replayed"]
        assert rows["unfiltered-replay"]["replay_discarded"] == 0
        # a bounded buffer policy reduces the peak buffer memory
        assert rows["combined-buffer-policy"]["buffer_memory"] <= rows["baseline"]["buffer_memory"]
        # none of the internal choices may hurt the delivery rate noticeably
        rates = [row["delivery_rate"] for row in table.rows]
        assert max(rates) - min(rates) <= 0.05
