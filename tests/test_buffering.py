"""Unit and property tests for buffering policies, buffers and the shared store."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.buffering import (
    CombinedPolicy,
    CountBasedPolicy,
    DigestBuffer,
    NotificationBuffer,
    SemanticPolicy,
    SharedNotificationStore,
    TimeBasedPolicy,
    UnboundedPolicy,
    make_policy,
)
from repro.pubsub.notification import Notification


def reading(room, value, index=0):
    return Notification({"service": "temperature", "location": room, "value": value, "i": index})


class TestPolicies:
    def test_unbounded_never_evicts(self):
        buffer = NotificationBuffer(UnboundedPolicy())
        for i in range(100):
            buffer.add(reading("r1", i), now=float(i))
        assert len(buffer) == 100
        assert buffer.evicted == 0

    def test_time_based_evicts_old_entries(self):
        buffer = NotificationBuffer(TimeBasedPolicy(ttl=10.0))
        buffer.add(reading("r1", 1), now=0.0)
        buffer.add(reading("r1", 2), now=5.0)
        buffer.add(reading("r1", 3), now=20.0)  # triggers eviction of the first two
        assert [n["value"] for n in buffer.contents()] == [3]
        assert buffer.evicted == 2

    def test_time_based_expire_without_add(self):
        buffer = NotificationBuffer(TimeBasedPolicy(ttl=5.0))
        buffer.add(reading("r1", 1), now=0.0)
        assert buffer.expire(now=10.0) == 1
        assert len(buffer) == 0

    def test_count_based_keeps_last_n(self):
        buffer = NotificationBuffer(CountBasedPolicy(max_entries=3))
        for i in range(10):
            buffer.add(reading("r1", i), now=float(i))
        assert [n["value"] for n in buffer.contents()] == [7, 8, 9]
        assert buffer.evicted == 7

    def test_combined_is_union_of_evictions(self):
        policy = CombinedPolicy([TimeBasedPolicy(ttl=10.0), CountBasedPolicy(max_entries=2)])
        buffer = NotificationBuffer(policy)
        buffer.add(reading("r1", 1), now=0.0)
        buffer.add(reading("r1", 2), now=1.0)
        buffer.add(reading("r1", 3), now=20.0)
        # time policy kills values 1 and 2 (too old); count policy would keep last 2
        assert [n["value"] for n in buffer.contents()] == [3]

    def test_semantic_nullification(self):
        policy = SemanticPolicy(lambda n: n.get("location"))
        buffer = NotificationBuffer(policy)
        buffer.add(reading("r1", 1), now=0.0)
        buffer.add(reading("r2", 2), now=1.0)
        buffer.add(reading("r1", 3), now=2.0)  # nullifies the first r1 reading
        values = [n["value"] for n in buffer.contents()]
        assert values == [2, 3]

    def test_semantic_none_key_exempt(self):
        policy = SemanticPolicy(lambda n: None)
        buffer = NotificationBuffer(policy)
        buffer.add(reading("r1", 1), now=0.0)
        buffer.add(reading("r1", 2), now=1.0)
        assert len(buffer) == 2

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            TimeBasedPolicy(0)
        with pytest.raises(ValueError):
            CountBasedPolicy(0)
        with pytest.raises(ValueError):
            CombinedPolicy([])

    def test_make_policy_factory(self):
        assert isinstance(make_policy("unbounded"), UnboundedPolicy)
        assert isinstance(make_policy("time", ttl=5), TimeBasedPolicy)
        assert isinstance(make_policy("count", max_entries=5), CountBasedPolicy)
        assert isinstance(make_policy("combined"), CombinedPolicy)
        assert isinstance(make_policy("semantic"), SemanticPolicy)
        with pytest.raises(ValueError):
            make_policy("nonsense")


class TestNotificationBuffer:
    def test_drain_returns_in_insertion_order_and_empties(self):
        buffer = NotificationBuffer()
        for i in range(5):
            buffer.add(reading("r1", i), now=float(i))
        drained = buffer.drain()
        assert [n["value"] for n in drained] == [0, 1, 2, 3, 4]
        assert len(buffer) == 0
        assert buffer.replayed == 5

    def test_drain_applies_policy_first(self):
        buffer = NotificationBuffer(TimeBasedPolicy(ttl=5.0))
        buffer.add(reading("r1", 1), now=0.0)
        buffer.add(reading("r1", 2), now=8.0)
        drained = buffer.drain(now=10.0)
        assert [n["value"] for n in drained] == [2]

    def test_clear(self):
        buffer = NotificationBuffer()
        buffer.add(reading("r1", 1), now=0.0)
        assert buffer.clear() == 1
        assert len(buffer) == 0

    def test_memory_bytes_tracks_content(self):
        buffer = NotificationBuffer()
        assert buffer.memory_bytes() == 0
        buffer.add(reading("r1", 1), now=0.0)
        assert buffer.memory_bytes() > 0


class TestSharedStore:
    def test_single_storage_for_shared_notifications(self):
        store = SharedNotificationStore()
        n = reading("r1", 1)
        digest_a = store.put(n)
        digest_b = store.put(n)
        assert digest_a == digest_b
        assert len(store) == 1
        assert store.get(digest_a) is n

    def test_release_garbage_collects_at_zero_references(self):
        store = SharedNotificationStore()
        n = reading("r1", 1)
        digest = store.put(n)
        store.put(n)
        store.release(digest)
        assert len(store) == 1
        store.release(digest)
        assert len(store) == 0
        assert store.collected == 1

    def test_release_unknown_digest_is_noop(self):
        store = SharedNotificationStore()
        store.release(12345)
        assert len(store) == 0

    def test_digest_buffer_drain_fetches_and_releases(self):
        store = SharedNotificationStore()
        buffer = DigestBuffer(store)
        notifications = [reading("r1", i) for i in range(4)]
        for i, n in enumerate(notifications):
            buffer.add(n, now=float(i))
        assert len(store) == 4
        drained = buffer.drain()
        assert drained == notifications
        assert len(store) == 0
        assert len(buffer) == 0

    def test_digest_buffer_respects_policy(self):
        store = SharedNotificationStore()
        buffer = DigestBuffer(store, CountBasedPolicy(max_entries=2))
        for i in range(5):
            buffer.add(reading("r1", i), now=float(i))
        assert len(buffer) == 2
        assert len(store) == 2  # evicted digests released their store entries

    def test_shared_memory_smaller_than_individual_for_overlap(self):
        notifications = [reading("r1", i) for i in range(50)]
        individual = [NotificationBuffer() for _ in range(5)]
        for buffer in individual:
            for n in notifications:
                buffer.add(n, now=0.0)
        individual_bytes = sum(b.memory_bytes() for b in individual)

        store = SharedNotificationStore()
        shared = [DigestBuffer(store) for _ in range(5)]
        for buffer in shared:
            for n in notifications:
                buffer.add(n, now=0.0)
        shared_bytes = store.memory_bytes() + sum(b.memory_bytes() for b in shared)
        assert shared_bytes < individual_bytes

    def test_digest_buffer_clear_releases(self):
        store = SharedNotificationStore()
        buffer = DigestBuffer(store)
        buffer.add(reading("r1", 1), now=0.0)
        buffer.clear()
        assert len(store) == 0


# ------------------------------------------------------------------ properties


@settings(max_examples=100, deadline=None)
@given(
    max_entries=st.integers(1, 10),
    values=st.lists(st.integers(0, 100), min_size=0, max_size=40),
)
def test_count_policy_never_exceeds_bound(max_entries, values):
    buffer = NotificationBuffer(CountBasedPolicy(max_entries))
    for i, value in enumerate(values):
        buffer.add(reading("r", value, i), now=float(i))
        assert len(buffer) <= max_entries
    # the survivors are exactly the most recent entries, in order
    survivors = [n["value"] for n in buffer.contents()]
    assert survivors == values[-len(survivors):] if survivors else values == [] or len(values) >= 0


@settings(max_examples=100, deadline=None)
@given(
    ttl=st.floats(min_value=0.5, max_value=20.0),
    gaps=st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=30),
)
def test_time_policy_only_keeps_fresh_entries(ttl, gaps):
    buffer = NotificationBuffer(TimeBasedPolicy(ttl))
    now = 0.0
    for i, gap in enumerate(gaps):
        now += gap
        buffer.add(reading("r", i, i), now=now)
    for entry in buffer.contents(now=now):
        pass  # contents() already applied the policy at `now`
    assert all(now - ttl <= now for _ in buffer.contents(now=now))
    # explicit check: after expiring at a much later time everything is gone
    buffer.expire(now + ttl + 1.0)
    assert len(buffer) == 0


@settings(max_examples=100, deadline=None)
@given(values=st.lists(st.tuples(st.sampled_from(["a", "b", "c"]), st.integers(0, 50)), max_size=30))
def test_semantic_policy_keeps_exactly_latest_per_key(values):
    buffer = NotificationBuffer(SemanticPolicy(lambda n: n.get("location")))
    for i, (room, value) in enumerate(values):
        buffer.add(reading(room, value, i), now=float(i))
    contents = buffer.contents()
    keys = [n["location"] for n in contents]
    assert len(keys) == len(set(keys))  # at most one entry per semantic key
    expected_latest = {}
    for room, value in values:
        expected_latest[room] = value
    for n in contents:
        assert n["value"] == expected_latest[n["location"]]
