"""Setup shim.

The offline environment used for the reproduction has no ``wheel`` package,
so PEP 517 editable installs (``pip install -e .``) cannot build a wheel.
This ``setup.py`` enables the legacy editable install path::

    pip install -e . --no-build-isolation --no-use-pep517

All real metadata lives in ``pyproject.toml``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
